package sweep

// This file is the shared-prefix artifact cache. The staged core pipeline
// (core.Parsed → Analyzed → Saturated) is a pure function of (circuit,
// seed, flow.Config) — none of the per-job knobs (l_k, β, refine) enter
// before MakePartition — so any batch of compilations that crosses one
// circuit with many downstream coordinates can compute the expensive
// prefix once and branch at partitioning. The cache is:
//
//   - singleflight: the first job to request a key computes it while every
//     concurrent requester blocks on the same entry, so a stage is computed
//     exactly once no matter how many workers (or server requests) race for
//     it;
//   - bounded: least-recently-used ready entries are evicted once the entry
//     count exceeds the capacity (in-flight computations are never evicted);
//   - error-transparent: a failed computation is handed to its waiters but
//     never cached, so a job cancelled mid-saturate cannot poison later
//     jobs that share the key.
//
// A Cache used to be private to one sweep.Run; the serve daemon promotes it
// to process lifetime by constructing one with NewCache and passing it to
// every run via Config.Cache (and to single compilations via
// Cache.Compile). Cumulative counters are read with Stats; each run
// additionally tracks its own hit/miss/eviction deltas so Report.Cache
// describes only that run's traffic.
//
// With NewCacheWithStore the cache becomes two-tier: the memory LRU reads
// through to a persistent ArtifactStore (internal/cas) and writes behind to
// it, so artifacts survive process restarts and are shared between
// concurrent processes (shards of one sweep, a serve daemon next to CLI
// runs). The singleflight guarantee spans both tiers — concurrent
// requesters of one key share a single disk read or compute. Errors are
// never persisted, exactly as they are never memory-cached; a corrupt or
// unreadable disk entry counts as a disk error and falls through to
// compute, so the disk tier can degrade but never poison a result.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// cacheStage identifies which pipeline stage an entry (and its statistics)
// belongs to.
type cacheStage int

const (
	stageParsed cacheStage = iota
	stageAnalyzed
	stageSaturated
)

// stageName maps a cacheStage to its ArtifactStore stage directory.
var stageName = [3]string{"parsed", "analyzed", "saturated"}

// StageStats counts cache outcomes for one pipeline stage, split by tier.
// Hits is the memory tier: a lookup that found an in-memory entry
// (including one still being computed or disk-read by another job — the
// requester shares the result without redoing the work). DiskHits is a
// lookup served by decoding a persistent store entry. Misses is a lookup
// that had to compute the stage. A failed compute counts as a miss.
type StageStats struct {
	Hits      int64 `json:"memory_hits"`
	DiskHits  int64 `json:"disk_hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// CacheStats reports a cache's per-stage effectiveness; `merced -sweep
// -cache-stats` surfaces a run's deltas and the serve daemon's /metrics
// endpoint the process-lifetime totals.
type CacheStats struct {
	Parsed    StageStats `json:"parsed"`
	Analyzed  StageStats `json:"analyzed"`
	Saturated StageStats `json:"saturated"`
	// Entries and Capacity describe the cache's current occupancy and bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// DiskErrors counts persistent-tier failures the cache absorbed —
	// quarantined corrupt entries, undecodable payloads, failed
	// write-behinds. Always the cache's cumulative total (not a run delta):
	// a disk problem is a store health signal, not a property of one run.
	DiskErrors int64 `json:"disk_errors,omitempty"`
}

// DefaultCacheEntries bounds the artifact cache when the capacity is unset:
// comfortably above the distinct (circuit, seed) prefixes of a Tables 10-12
// sweep, small enough that pathological matrices stay bounded.
const DefaultCacheEntries = 256

type cacheEntry struct {
	// ready is closed once val/err are final.
	ready   chan struct{}
	val     any
	err     error
	stage   cacheStage
	lastUse int64
}

// ArtifactStore is the persistent tier under the memory LRU: a durable
// byte store addressed by (stage, logical key, schema version).
// internal/cas.Store implements it. Get returns ok=false with a nil error
// on a clean miss (no entry, or an entry written under a different schema
// version); an error means the entry existed but could not be trusted —
// the cache counts it and recomputes. Implementations must be safe for
// concurrent use.
type ArtifactStore interface {
	Get(stage, key string, schema int) (payload []byte, ok bool, err error)
	Put(stage, key string, schema int, payload []byte) error
}

// stageCodec translates one stage's in-memory artifact to and from its
// persistent payload. Codecs for the analyzed and saturated stages close
// over the upstream artifact the decoder attaches to.
type stageCodec struct {
	schema int
	encode func(any) ([]byte, error)
	decode func([]byte) (any, error)
}

// parsedCodec persists core.Parsed artifacts. Note the parsed stage is
// keyed by circuit reference ("parsed:<name>"), not content — editing a
// .bench file under a warm cache directory serves the old parse until the
// entry is evicted or the directory cleared (documented in DESIGN.md §14).
var parsedCodec = &stageCodec{
	schema: core.ParsedSchemaVersion,
	encode: func(v any) ([]byte, error) { return v.(*core.Parsed).Encode() },
	decode: func(b []byte) (any, error) { return core.DecodeParsed(b) },
}

// analyzedCodec persists core.Analyzed artifacts built from p.
func analyzedCodec(p *core.Parsed) *stageCodec {
	return &stageCodec{
		schema: core.AnalyzedSchemaVersion,
		encode: func(v any) ([]byte, error) { return v.(*core.Analyzed).Encode() },
		decode: func(b []byte) (any, error) { return core.DecodeAnalyzed(p, b) },
	}
}

// saturatedCodec persists core.Saturated artifacts built from a.
func saturatedCodec(a *core.Analyzed) *stageCodec {
	return &stageCodec{
		schema: core.SaturatedSchemaVersion,
		encode: func(v any) ([]byte, error) { return v.(*core.Saturated).Encode() },
		decode: func(b []byte) (any, error) { return core.DecodeSaturated(a, b) },
	}
}

// Cache is the bounded singleflight artifact store. The zero value is not
// usable; call NewCache. A Cache outlives any single run: the serve daemon
// keeps one for the whole process so repeat circuits hit the Saturated
// prefix instantly, across requests.
type Cache struct {
	mu      sync.Mutex
	cap     int
	gen     int64
	entries map[string]*cacheEntry
	stats   [3]StageStats

	// store is the optional persistent tier; nil means memory-only.
	store ArtifactStore
	// writes tracks in-flight write-behind goroutines; Flush waits on it.
	writes sync.WaitGroup
	// diskErrors counts store failures (cumulative; see CacheStats).
	diskErrors atomic.Int64
}

// NewCache returns an empty memory-only cache bounded to capacity entries
// (DefaultCacheEntries when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{cap: capacity, entries: make(map[string]*cacheEntry)}
}

// NewCacheWithStore returns a two-tier cache: the memory LRU reads through
// to store and writes freshly computed artifacts behind to it. A nil store
// is equivalent to NewCache.
func NewCacheWithStore(capacity int, store ArtifactStore) *Cache {
	c := NewCache(capacity)
	c.store = store
	return c
}

// Flush waits for every pending write-behind to land in the persistent
// store. Call it before process exit (and before inspecting the store);
// artifacts are only guaranteed durable after Flush returns.
func (c *Cache) Flush() { c.writes.Wait() }

// newArtifactCache is the historical constructor name, kept for the
// package's own call sites and tests.
func newArtifactCache(capacity int) *Cache { return NewCache(capacity) }

// getOrCompute returns the cached value for key, computing it with fn on a
// miss. computed reports whether this call ran fn — callers use it to
// attribute the stage's cost to exactly one job. On error the entry is
// dropped so a later request recomputes.
func (c *Cache) getOrCompute(st cacheStage, key string, fn func() (any, error)) (val any, computed bool, err error) {
	return c.getOrComputeTracked(st, key, nil, fn)
}

// getOrComputeTracked is getOrCompute with per-run attribution: when per is
// non-nil, the outcome is counted there as well as in the cumulative stats.
// per is written only under the cache mutex, so one tracker may be shared
// by every worker of a run.
func (c *Cache) getOrComputeTracked(st cacheStage, key string, per *[3]StageStats, fn func() (any, error)) (val any, computed bool, err error) {
	return c.getOrComputeStored(st, key, per, nil, fn)
}

// getOrComputeStored is the full two-tier lookup: memory, then (when both a
// store and a codec are present) the persistent tier, then fn. The entry is
// inserted before either slow path runs, so the singleflight guarantee
// spans disk reads and computes alike. computed reports whether fn ran —
// a disk hit is not a compute, so phase timings are never attributed to it.
func (c *Cache) getOrComputeStored(st cacheStage, key string, per *[3]StageStats, codec *stageCodec, fn func() (any, error)) (val any, computed bool, err error) {
	c.mu.Lock()
	c.gen++
	if e, ok := c.entries[key]; ok {
		e.lastUse = c.gen
		c.stats[st].Hits++
		if per != nil {
			per[st].Hits++
		}
		c.mu.Unlock()
		<-e.ready
		return e.val, false, e.err
	}
	e := &cacheEntry{ready: make(chan struct{}), stage: st, lastUse: c.gen}
	c.entries[key] = e
	c.mu.Unlock()

	// Persistent tier: a decodable entry fills the memory tier without
	// computing. Any store or decode failure counts and falls through — the
	// disk tier may degrade but never fails a lookup.
	fromDisk := false
	if c.store != nil && codec != nil {
		if payload, ok, derr := c.store.Get(stageName[st], key, codec.schema); derr != nil {
			c.diskErrors.Add(1)
		} else if ok {
			if v, decErr := codec.decode(payload); decErr == nil {
				e.val = v
				fromDisk = true
			} else {
				c.diskErrors.Add(1)
			}
		}
	}
	if !fromDisk {
		e.val, e.err = fn()
	}
	close(e.ready)

	c.mu.Lock()
	if fromDisk {
		c.stats[st].DiskHits++
		if per != nil {
			per[st].DiskHits++
		}
	} else {
		c.stats[st].Misses++
		if per != nil {
			per[st].Misses++
		}
	}
	if e.err != nil {
		// Never cache failures: a context-cancelled computation must not
		// decide the fate of jobs that arrive with a live context.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	} else {
		c.evictLocked(per)
	}
	c.mu.Unlock()

	// Write-behind: persist a fresh compute without holding up the job.
	// Errors are never written, and a failed write only counts — the next
	// cold process recomputes.
	if !fromDisk && e.err == nil && c.store != nil && codec != nil {
		c.writes.Add(1)
		go func() {
			defer c.writes.Done()
			payload, encErr := codec.encode(e.val)
			if encErr != nil {
				c.diskErrors.Add(1)
				return
			}
			if putErr := c.store.Put(stageName[st], key, codec.schema, payload); putErr != nil {
				c.diskErrors.Add(1)
			}
		}()
	}
	return e.val, !fromDisk, e.err
}

// evictLocked drops least-recently-used ready entries until the bound
// holds, attributing the evictions to the run that inserted past it.
// In-flight entries are skipped — evicting one would strand waiters.
func (c *Cache) evictLocked(per *[3]StageStats) {
	for len(c.entries) > c.cap {
		var victimKey string
		var victim *cacheEntry
		//detlint:ordered lastUse values come from a monotonic generation counter and are unique, so the argmin is tie-free
		for k, e := range c.entries {
			select {
			case <-e.ready:
			default:
				continue // still computing
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return // everything in flight; bound temporarily exceeded
		}
		delete(c.entries, victimKey)
		c.stats[victim.stage].Evictions++
		if per != nil {
			per[victim.stage].Evictions++
		}
	}
}

// Stats snapshots the cumulative counters — every hit, miss, and eviction
// since the cache was constructed, across all runs that shared it.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Parsed:     c.stats[stageParsed],
		Analyzed:   c.stats[stageAnalyzed],
		Saturated:  c.stats[stageSaturated],
		Entries:    len(c.entries),
		Capacity:   c.cap,
		DiskErrors: c.diskErrors.Load(),
	}
}

// statsFor assembles a run-scoped CacheStats: the run's own per-stage
// deltas over the cache's current occupancy. With a run-private cache the
// result equals Stats().
func (c *Cache) statsFor(per *[3]StageStats) CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Parsed:     per[stageParsed],
		Analyzed:   per[stageAnalyzed],
		Saturated:  per[stageSaturated],
		Entries:    len(c.entries),
		Capacity:   c.cap,
		DiskErrors: c.diskErrors.Load(),
	}
}

// Compile runs one compilation through the shared-prefix cache: the
// parse/analyze/saturate stages hit (or fill) the cache exactly as sweep
// jobs do, and core.CompileFrom finishes the per-job suffix. name resolves
// through load (LoadCircuit when nil). It is the single-job funnel the
// jobspec runner uses for compile and cover jobs, so a serve daemon's
// one-off compilations share prefixes with its sweeps.
//
// Result.Elapsed covers the whole call — load included on a cold cache —
// matching core.Compile's accounting for the uncached case.
func (c *Cache) Compile(ctx context.Context, name string, load func(string) (*netlist.Circuit, error), opt core.Options) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if load == nil {
		load = LoadCircuit
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	pv, _, err := cacheStagedArtifact(ctx, c, stageParsed, "parsed:"+name, nil, parsedCodec, func() (any, error) {
		sp := obs.Start(ctx, "stage", "parse "+name)
		defer sp.End()
		cir, err := load(name)
		if err != nil {
			return nil, err
		}
		return core.NewParsed(cir)
	})
	if err != nil {
		return nil, err
	}
	r, err := compileStaged(ctx, pv.(*core.Parsed), c, nil, opt)
	if r != nil && err == nil {
		r.Elapsed = time.Since(start)
	}
	return r, err
}
