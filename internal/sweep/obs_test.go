package sweep

// Tests for the observability contract: instrumentation must never perturb
// output. Reports stay byte-identical with tracing enabled, the metrics
// table is identical for any worker count (run under -race in CI), and the
// progress callback reports every job exactly once.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func obsTestJobs() []Job {
	return Matrix([]string{"s27", "s510"}, []int{16, 24}, []int{25, 100}, []int64{1, 2}, nil)
}

// Tracing is a pure side channel: the same matrix swept with a live
// recorder renders byte-identical reports, and the recorder actually saw
// the jobs and stages on per-worker lanes.
func TestTracedSweepByteIdenticalReports(t *testing.T) {
	jobs := obsTestJobs()
	plain, err := Run(context.Background(), jobs, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	traced, err := Run(obs.With(context.Background(), rec, 0), jobs, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pj, pc := renderDeterministic(t, plain)
	tj, tc := renderDeterministic(t, traced)
	if pj != tj {
		t.Errorf("JSON reports differ with tracing enabled:\n--- plain\n%s\n--- traced\n%s", pj, tj)
	}
	if pc != tc {
		t.Errorf("CSV reports differ with tracing enabled:\n--- plain\n%s\n--- traced\n%s", pc, tc)
	}
	// One span per job plus the preloaded parse stages at minimum.
	if rec.Len() < len(jobs) {
		t.Errorf("recorder holds %d spans for %d jobs", rec.Len(), len(jobs))
	}
	lanes := rec.LaneNames()
	if len(lanes) < 2 {
		t.Errorf("no worker lanes registered: %v", lanes)
	}
}

// The metrics table aggregates in job order from per-job counters, so it is
// identical for any worker count and with caching disabled (counters follow
// consumption: a shared Saturated artifact reports its flow work to every
// job that consumed it).
func TestMetricsIdenticalAcrossWorkersAndCache(t *testing.T) {
	jobs := obsTestJobs()
	render := func(cfg Config) string {
		rep, err := Run(context.Background(), jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Failed != 0 {
			t.Fatal(rep.FirstErr())
		}
		var buf bytes.Buffer
		if err := rep.Metrics().WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	base := render(Config{Workers: 1})
	if got := render(Config{Workers: 8}); got != base {
		t.Errorf("metrics table differs between workers 1 and 8:\n--- workers=1\n%s\n--- workers=8\n%s", base, got)
	}
	// NoCache recomputes the shared prefixes, so only the cache.* counters
	// may change; the kernel counters must not (consumption attribution).
	dropCache := func(table string) string {
		var kept []string
		for _, l := range strings.Split(table, "\n") {
			if !strings.HasPrefix(l, "cache.") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	if got := render(Config{Workers: 4, NoCache: true}); dropCache(got) != dropCache(base) {
		t.Errorf("kernel counters differ with NoCache:\n--- cached\n%s\n--- no-cache\n%s", base, got)
	}
	// Sanity: the table carries the hot-kernel counters, not just totals.
	for _, want := range []string{"flow.trees", "retime.spfa_relaxations", "partition.dfs_visits", "cache.saturated.hits", "sweep.jobs"} {
		if !bytes.Contains([]byte(base), []byte(want)) {
			t.Errorf("metrics table missing %q:\n%s", want, base)
		}
	}
}

// The JSON metrics object round-trips and matches the table's counters.
func TestMetricsJSONRendering(t *testing.T) {
	jobs := Matrix([]string{"s27"}, []int{16}, []int{50}, []int64{1}, nil)
	rep, err := Run(context.Background(), jobs, Config{Coverage: true})
	if err != nil {
		t.Fatal(err)
	}
	var with, without bytes.Buffer
	if err := rep.WriteJSON(&with, RenderOptions{Metrics: true}); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&without, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics *obs.Metrics `json:"metrics"`
	}
	if err := json.Unmarshal(with.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metrics == nil {
		t.Fatal("Metrics option did not emit a \"metrics\" object")
	}
	if doc.Metrics.Counters["sweep.jobs"] != 1 {
		t.Errorf("metrics.sweep.jobs = %d, want 1", doc.Metrics.Counters["sweep.jobs"])
	}
	if doc.Metrics.Counters["campaign.batches"] == 0 {
		t.Error("coverage sweep metrics missing campaign counters")
	}
	var bare struct {
		Metrics *obs.Metrics `json:"metrics"`
	}
	if err := json.Unmarshal(without.Bytes(), &bare); err != nil {
		t.Fatal(err)
	}
	if bare.Metrics != nil {
		t.Error("\"metrics\" object present without the Metrics option")
	}
}

// Progress fires once per job with the fixed total, ending at total/total.
func TestProgressCallbackCountsJobs(t *testing.T) {
	jobs := obsTestJobs()
	var mu sync.Mutex
	calls := 0
	maxDone := 0
	rep, err := Run(context.Background(), jobs, Config{
		Workers: 4,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if done > maxDone {
				maxDone = done
			}
			if total != len(jobs) {
				t.Errorf("total = %d, want %d", total, len(jobs))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Failed != 0 {
		t.Fatal(rep.FirstErr())
	}
	if calls != len(jobs) || maxDone != len(jobs) {
		t.Errorf("progress calls = %d, max done = %d, want %d", calls, maxDone, len(jobs))
	}
}
