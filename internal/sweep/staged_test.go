package sweep

// Tests for the staged shared-prefix pipeline inside the sweep engine:
// cached and uncached runs must render byte-identical deterministic
// reports, and the cache counters must reflect the matrix shape exactly.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
)

// renderDeterministic renders the report's deterministic (no-timing) JSON
// and CSV forms.
func renderDeterministic(t *testing.T, rep *Report) (jsonOut, csvOut string) {
	t.Helper()
	var j, c bytes.Buffer
	if err := rep.WriteJSON(&j, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&c, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	return j.String(), c.String()
}

// The headline refactor guarantee: shared-prefix reuse changes wall-clock
// cost only. Cached and uncached sweeps of the same matrix render
// byte-identical deterministic reports.
func TestCachedMatchesNoCacheByteIdentical(t *testing.T) {
	jobs := Matrix([]string{"s27", "s510"}, []int{16, 24}, []int{25, 100}, []int64{1, 2}, nil)
	cached, err := Run(context.Background(), jobs, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := Run(context.Background(), jobs, Config{Workers: 4, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	cj, cc := renderDeterministic(t, cached)
	uj, uc := renderDeterministic(t, uncached)
	if cj != uj {
		t.Errorf("JSON reports differ between cached and -no-cache:\n--- cached\n%s\n--- no-cache\n%s", cj, uj)
	}
	if cc != uc {
		t.Errorf("CSV reports differ between cached and -no-cache:\n--- cached\n%s\n--- no-cache\n%s", cc, uc)
	}
}

// Cache counters are a deterministic function of the matrix shape: one
// miss per distinct circuit for parse/analyze, one per (circuit, seed)
// for saturate, hits for every other job, regardless of worker count.
func TestCacheStatsReflectMatrixShape(t *testing.T) {
	// 2 circuits × 2 lks × 2 betas × 2 seeds = 16 jobs.
	jobs := Matrix([]string{"s27", "s510"}, []int{16, 24}, []int{25, 100}, []int64{1, 2}, nil)
	for _, workers := range []int{1, 8} {
		rep, err := Run(context.Background(), jobs, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Failed != 0 {
			t.Fatal(rep.FirstErr())
		}
		cs := rep.Cache
		// Parse and analyze depend only on the circuit: 2 misses, 14 hits.
		if cs.Parsed.Misses != 2 || cs.Parsed.Hits != 14 {
			t.Errorf("workers=%d: parsed %dh/%dm, want 14h/2m", workers, cs.Parsed.Hits, cs.Parsed.Misses)
		}
		if cs.Analyzed.Misses != 2 || cs.Analyzed.Hits != 14 {
			t.Errorf("workers=%d: analyzed %dh/%dm, want 14h/2m", workers, cs.Analyzed.Hits, cs.Analyzed.Misses)
		}
		// Saturation also keys on the seed: 2×2 misses, 12 hits.
		if cs.Saturated.Misses != 4 || cs.Saturated.Hits != 12 {
			t.Errorf("workers=%d: saturated %dh/%dm, want 12h/4m", workers, cs.Saturated.Hits, cs.Saturated.Misses)
		}
		if ev := cs.Parsed.Evictions + cs.Analyzed.Evictions + cs.Saturated.Evictions; ev != 0 {
			t.Errorf("workers=%d: %d evictions on a matrix far below capacity", workers, ev)
		}
		if cs.Entries != 2+2+4 {
			t.Errorf("workers=%d: entries = %d, want 8", workers, cs.Entries)
		}
		if cs.Capacity != DefaultCacheEntries {
			t.Errorf("workers=%d: capacity = %d, want %d", workers, cs.Capacity, DefaultCacheEntries)
		}
	}
}

// NoCache keeps the per-job pipeline self-contained: the analyzed and
// saturated stages never touch the cache. (Parsed counters still reflect
// the circuit preload, which always deduplicates through the cache.)
func TestNoCacheSkipsStagedArtifacts(t *testing.T) {
	jobs := Matrix([]string{"s27"}, []int{16, 24}, []int{50}, []int64{1}, nil)
	rep, err := Run(context.Background(), jobs, Config{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.Cache
	if cs.Analyzed != (StageStats{}) || cs.Saturated != (StageStats{}) {
		t.Errorf("NoCache touched staged artifacts: analyzed %+v, saturated %+v", cs.Analyzed, cs.Saturated)
	}
	if cs.Parsed.Misses != 1 || cs.Parsed.Hits != 1 {
		t.Errorf("parsed preload %dh/%dm, want 1h/1m", cs.Parsed.Hits, cs.Parsed.Misses)
	}
}

// A tight cache still produces correct results — jobs just recompute
// evicted prefixes. This exercises the eviction path end to end.
func TestTinyCacheStillCorrect(t *testing.T) {
	jobs := Matrix([]string{"s27", "s510"}, []int{16, 24}, []int{50}, []int64{1, 2}, nil)
	tiny, err := Run(context.Background(), jobs, Config{Workers: 2, CacheEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	roomy, err := Run(context.Background(), jobs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tj, _ := renderDeterministic(t, tiny)
	rj, _ := renderDeterministic(t, roomy)
	if tj != rj {
		t.Errorf("reports differ between CacheEntries=1 and default:\n--- tiny\n%s\n--- roomy\n%s", tj, rj)
	}
}

// Lint gating composes with the shared pipeline: every job still passes
// its gates, and the memoized netlist lint is exercised concurrently
// (a -race probe for Parsed.NetlistLint).
func TestLintGatesWithSharedArtifacts(t *testing.T) {
	jobs := Matrix([]string{"s27", "s510"}, []int{16, 24}, []int{50}, []int64{1}, nil)
	rep, err := Run(context.Background(), jobs, Config{Workers: 4, Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Failed != 0 {
		t.Fatal(rep.FirstErr())
	}
}

// Benchmarks for the shared-prefix speedup; CI runs them once per commit
// (`go test -bench Sweep -benchtime 1x`) into BENCH_sweep.json. The
// matrix crosses each (circuit, seed) prefix with six (l_k, β)
// coordinates, so the cached run saturates each prefix once instead of
// six times.
func benchmarkJobs() []Job {
	return Matrix([]string{"s27", "s510", "s1423"}, []int{16, 24}, []int{25, 50, 100}, []int64{1}, nil)
}

func runSweepBenchmark(b *testing.B, cfg Config) {
	jobs := benchmarkJobs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), jobs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.Failed != 0 {
			b.Fatal(rep.FirstErr())
		}
	}
}

func BenchmarkSweepSharedPrefix(b *testing.B) { runSweepBenchmark(b, Config{}) }

func BenchmarkSweepNoCache(b *testing.B) { runSweepBenchmark(b, Config{NoCache: true}) }

// BenchmarkSweepTraced is BenchmarkSweepSharedPrefix with a live trace
// recorder in the context; the delta against the plain benchmark is the
// enabled-tracing overhead, and CI records both into BENCH_obs.json (the
// disabled path must stay within noise of the plain run, which predates
// the obs layer).
func BenchmarkSweepTraced(b *testing.B) {
	jobs := benchmarkJobs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := obs.With(context.Background(), obs.NewRecorder(), 0)
		rep, err := Run(ctx, jobs, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.Failed != 0 {
			b.Fatal(rep.FirstErr())
		}
	}
}
