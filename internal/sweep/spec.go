package sweep

// This file builds job matrices: the cross product of circuits × l_k ×
// beta × seed that reproduces the paper's Tables 10-12. The JSON request
// shape that used to live here (the `-spec` file) moved to
// internal/jobspec, the versioned job model shared by the CLI and the
// serve daemon; jobspec expands its sweep bodies through these helpers.

import (
	"fmt"

	"repro/internal/bench89"
)

// Matrix crosses the axes into jobs, circuit-major then l_k, beta, seed,
// lanes: the deterministic input order that Report.Jobs preserves. lanes
// is the coverage batch-width axis; nil or empty means one pass at the
// engine default (Job.Lanes 0).
func Matrix(circuits []string, lks []int, betas []int, seeds []int64, lanes []int) []Job {
	if len(lanes) == 0 {
		lanes = []int{0}
	}
	jobs := make([]Job, 0, len(circuits)*len(lks)*len(betas)*len(seeds)*len(lanes))
	for _, c := range circuits {
		for _, lk := range lks {
			for _, beta := range betas {
				for _, seed := range seeds {
					for _, lw := range lanes {
						jobs = append(jobs, Job{Circuit: c, LK: lk, Beta: beta, Seed: seed, Lanes: lw})
					}
				}
			}
		}
	}
	return jobs
}

// ExpandCircuits resolves the "all" and "small" aliases against the
// built-in benchmark set, passing every other name through untouched.
func ExpandCircuits(names []string) ([]string, error) {
	var out []string
	for _, n := range names {
		switch n {
		case "":
			return nil, fmt.Errorf("sweep: empty circuit name")
		case "all":
			out = append(out, "s27")
			for _, sp := range bench89.Specs {
				out = append(out, sp.Name)
			}
		case "small":
			out = append(out, "s27")
			for _, sp := range bench89.SmallSpecs(1300) {
				out = append(out, sp.Name)
			}
		default:
			out = append(out, n)
		}
	}
	return out, nil
}
