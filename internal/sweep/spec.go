package sweep

// This file builds job matrices: the cross product of circuits × l_k ×
// beta × seed that reproduces the paper's Tables 10-12, from CLI flags or
// a JSON spec file.

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bench89"
)

// Spec is the JSON sweep description consumed by `merced -sweep -spec`:
// the matrix fields are crossed into jobs, then any explicit Jobs are
// appended verbatim.
//
//	{
//	  "circuits": ["all"],
//	  "lks": [16, 24],
//	  "betas": [50],
//	  "seeds": [1],
//	  "jobs": [{"circuit": "s27", "lk": 3, "seed": 7}]
//	}
type Spec struct {
	// Circuits lists built-in names, .bench paths, or the aliases "all"
	// (s27 plus every Table 9 circuit) and "small" (the fast subset).
	Circuits []string `json:"circuits,omitempty"`
	// LKs defaults to the paper's {16, 24} when Circuits is non-empty.
	LKs []int `json:"lks,omitempty"`
	// Betas defaults to the paper's {50}.
	Betas []int `json:"betas,omitempty"`
	// Seeds defaults to {1}.
	Seeds []int64 `json:"seeds,omitempty"`
	// Jobs are appended after the matrix expansion.
	Jobs []Job `json:"jobs,omitempty"`
}

// ParseSpec decodes a Spec, rejecting unknown fields so a typo'd key fails
// loudly instead of silently shrinking the experiment.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: parsing spec: %w", err)
	}
	return &s, nil
}

// Expand turns the spec into the concrete job list: matrix first (circuit-
// major, then l_k, beta, seed — the row order of Tables 10-12), explicit
// jobs after.
func (s *Spec) Expand() ([]Job, error) {
	circuits, err := ExpandCircuits(s.Circuits)
	if err != nil {
		return nil, err
	}
	lks := s.LKs
	if len(lks) == 0 {
		lks = []int{16, 24}
	}
	betas := s.Betas
	if len(betas) == 0 {
		betas = []int{50}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	jobs := Matrix(circuits, lks, betas, seeds)
	jobs = append(jobs, s.Jobs...)
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sweep: spec expands to no jobs")
	}
	return jobs, nil
}

// Matrix crosses the axes into jobs, circuit-major then l_k, beta, seed:
// the deterministic input order that Report.Jobs preserves.
func Matrix(circuits []string, lks []int, betas []int, seeds []int64) []Job {
	jobs := make([]Job, 0, len(circuits)*len(lks)*len(betas)*len(seeds))
	for _, c := range circuits {
		for _, lk := range lks {
			for _, beta := range betas {
				for _, seed := range seeds {
					jobs = append(jobs, Job{Circuit: c, LK: lk, Beta: beta, Seed: seed})
				}
			}
		}
	}
	return jobs
}

// ExpandCircuits resolves the "all" and "small" aliases against the
// built-in benchmark set, passing every other name through untouched.
func ExpandCircuits(names []string) ([]string, error) {
	var out []string
	for _, n := range names {
		switch n {
		case "":
			return nil, fmt.Errorf("sweep: empty circuit name")
		case "all":
			out = append(out, "s27")
			for _, sp := range bench89.Specs {
				out = append(out, sp.Name)
			}
		case "small":
			out = append(out, "s27")
			for _, sp := range bench89.SmallSpecs(1300) {
				out = append(out, sp.Name)
			}
		default:
			out = append(out, n)
		}
	}
	return out, nil
}
