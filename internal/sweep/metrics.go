package sweep

// Metrics aggregation for a finished sweep. Counters are pure functions of
// the per-job results, summed in input order — never collected from
// concurrent callbacks — so for a given job matrix the table is
// byte-identical for any worker count, with caching on or off, and with
// tracing on or off. (Cache counters share -cache-stats's caveat: they are
// deterministic as long as the cache never evicts, which holds for every
// paper-scale matrix under the default capacity.)

import "repro/internal/obs"

// Metrics aggregates the sweep's hot-kernel counters, campaign counters
// (under Config.Coverage), and artifact-cache statistics into a
// deterministic registry.
func (r *Report) Metrics() *obs.Metrics {
	m := obs.NewMetrics()
	m.Add("sweep.jobs", int64(r.Stats.Jobs))
	m.Add("sweep.failed", int64(r.Stats.Failed))
	for i := range r.Jobs {
		jr := &r.Jobs[i]
		if jr.Err != nil {
			continue
		}
		jr.Kernels.AddTo(m)
		if jr.Coverage != nil {
			jr.Coverage.AddMetrics(m)
		}
	}
	addCacheStage := func(prefix string, s StageStats) {
		m.Add(prefix+".hits", s.Hits)
		m.Add(prefix+".disk_hits", s.DiskHits)
		m.Add(prefix+".misses", s.Misses)
		m.Add(prefix+".evictions", s.Evictions)
	}
	addCacheStage("cache.parsed", r.Cache.Parsed)
	addCacheStage("cache.analyzed", r.Cache.Analyzed)
	addCacheStage("cache.saturated", r.Cache.Saturated)
	return m
}
