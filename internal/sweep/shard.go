package sweep

// Deterministic sharding: a sweep's expanded job list is partitioned by
// stable global job index (round-robin: shard i of N takes jobs with
// index ≡ i-1 mod N), each shard runs its slice and emits a
// self-describing ShardReport, and MergeShards reassembles N of them into
// a Report byte-identical to the unsharded run.
//
// The protocol's safety rests on the universe fingerprint: every shard
// pins the SHA-256 of the full expanded job list it was cut from, so a
// merge of shards produced from different matrices, different configs, or
// different render options fails loudly instead of splicing unrelated
// results. Under no_timing the shard files themselves are byte-
// deterministic (wall-clock fields are dropped at write time), which is
// what lets CI diff a 3-way sharded run against the unsharded golden.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// ShardFormatVersion is the shard-report schema this build reads and
// writes.
const ShardFormatVersion = 1

// Shard names one 1-based slice of a job universe: shard Index of Count.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// ParseShard parses the CLI form "i/N".
func ParseShard(s string) (Shard, error) {
	var sh Shard
	if n, err := fmt.Sscanf(s, "%d/%d", &sh.Index, &sh.Count); err != nil || n != 2 {
		return Shard{}, fmt.Errorf("sweep: shard spec %q: want i/N (e.g. 1/3)", s)
	}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

func (sh Shard) String() string { return fmt.Sprintf("%d/%d", sh.Index, sh.Count) }

// Validate checks the 1-based invariant 1 <= Index <= Count.
func (sh Shard) Validate() error {
	if sh.Count < 1 {
		return fmt.Errorf("sweep: shard count must be >= 1 (got %d)", sh.Count)
	}
	if sh.Index < 1 || sh.Index > sh.Count {
		return fmt.Errorf("sweep: shard index must be in 1..%d (got %d)", sh.Count, sh.Index)
	}
	return nil
}

// Select returns this shard's slice of the universe — jobs whose global
// index is ≡ Index-1 mod Count — together with those global indices.
// Round-robin keeps shards balanced even when the matrix is ordered
// circuit-major (contiguous slices would give one shard all the big
// circuits).
func (sh Shard) Select(universe []Job) (jobs []Job, globals []int) {
	for i := sh.Index - 1; i < len(universe); i += sh.Count {
		jobs = append(jobs, universe[i])
		globals = append(globals, i)
	}
	return jobs, globals
}

// UniverseHash fingerprints an expanded job list: the SHA-256 of its
// newline-delimited canonical JSON encoding. Two universes hash equal iff
// they contain the same jobs in the same order.
func UniverseHash(universe []Job) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, j := range universe {
		enc.Encode(j) //nolint:errcheck // writing to a hash cannot fail
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ShardUniverse pins the full expanded job list a shard was cut from.
type ShardUniverse struct {
	Jobs   int    `json:"jobs"`
	SHA256 string `json:"sha256"`
}

// ShardConfig is the result-affecting sweep configuration, restated in
// every shard so a merge can refuse to splice runs that would not have
// produced identical per-job results.
type ShardConfig struct {
	NoRetimeSolver bool   `json:"no_retime_solver,omitempty"`
	Lint           bool   `json:"lint,omitempty"`
	Coverage       bool   `json:"coverage,omitempty"`
	MaxPatterns    uint64 `json:"max_patterns,omitempty"`
}

// ShardOutput carries the render options the unsharded run would have
// used; the merge renders the reassembled report with exactly these.
type ShardOutput struct {
	Format     string `json:"format"`
	NoTiming   bool   `json:"no_timing,omitempty"`
	CacheStats bool   `json:"cache_stats,omitempty"`
	Metrics    bool   `json:"metrics,omitempty"`
}

// ShardJobResult is one job's outcome inside a shard report: the global
// index locating it in the universe plus the serializable JobResult
// fields. Timing fields are present only when the shard ran with timing
// enabled.
type ShardJobResult struct {
	Index     int                   `json:"index"`
	Job       Job                   `json:"job"`
	Error     string                `json:"error,omitempty"`
	Clusters  int                   `json:"clusters,omitempty"`
	MaxInputs int                   `json:"max_inputs,omitempty"`
	Areas     core.AreaReport       `json:"areas"`
	Kernels   core.KernelCounters   `json:"kernels"`
	Coverage  *fault.CampaignReport `json:"coverage,omitempty"`
	ElapsedNS int64                 `json:"elapsed_ns,omitempty"`
	Phases    *core.Phases          `json:"phases_ns,omitempty"`
}

// ShardReport is one shard's self-describing output document.
type ShardReport struct {
	V        int              `json:"v"`
	Shard    Shard            `json:"shard"`
	Universe ShardUniverse    `json:"universe"`
	Config   ShardConfig      `json:"config"`
	Output   ShardOutput      `json:"output"`
	Workers  int              `json:"workers"`
	WallNS   int64            `json:"wall_ns,omitempty"`
	Cache    CacheStats       `json:"cache"`
	Jobs     []ShardJobResult `json:"jobs"`
}

// BuildShardReport assembles the shard document for a finished slice run.
// universe is the full expanded job list; globals maps rep.Jobs[i] to its
// universe index (as returned by Select). Under out.NoTiming every
// wall-clock field is dropped, making the document byte-deterministic.
func BuildShardReport(sh Shard, universe []Job, globals []int, rep *Report, cfg ShardConfig, out ShardOutput) *ShardReport {
	sr := &ShardReport{
		V:        ShardFormatVersion,
		Shard:    sh,
		Universe: ShardUniverse{Jobs: len(universe), SHA256: UniverseHash(universe)},
		Config:   cfg,
		Output:   out,
		Workers:  rep.Stats.Workers,
		Cache:    rep.Cache,
		Jobs:     make([]ShardJobResult, len(rep.Jobs)),
	}
	if !out.NoTiming {
		sr.WallNS = int64(rep.Stats.Wall)
	}
	for i := range rep.Jobs {
		jr := &rep.Jobs[i]
		e := ShardJobResult{
			Index:     globals[i],
			Job:       jr.Job,
			Clusters:  jr.Clusters,
			MaxInputs: jr.MaxInputs,
			Areas:     jr.Areas,
			Kernels:   jr.Kernels,
			Coverage:  jr.Coverage,
		}
		if jr.Err != nil {
			e.Error = jr.Err.Error()
		}
		if !out.NoTiming {
			e.ElapsedNS = int64(jr.Elapsed)
			ph := jr.Phases
			e.Phases = &ph
		} else if e.Coverage != nil && e.Coverage.Elapsed != 0 {
			// CampaignReport.Elapsed is observability metadata; drop it so
			// the shard document stays byte-deterministic under no_timing.
			cov := *e.Coverage
			cov.Elapsed = 0
			e.Coverage = &cov
		}
		sr.Jobs[i] = e
	}
	return sr
}

// WriteJSON renders the shard document as indented JSON.
func (sr *ShardReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sr)
}

// ReadShardReport decodes and sanity-checks one shard document.
func ReadShardReport(r io.Reader) (*ShardReport, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sr ShardReport
	if err := dec.Decode(&sr); err != nil {
		return nil, fmt.Errorf("sweep: decoding shard report: %w", err)
	}
	if sr.V != ShardFormatVersion {
		return nil, fmt.Errorf("sweep: shard report version %d (this build speaks %d)", sr.V, ShardFormatVersion)
	}
	if err := sr.Shard.Validate(); err != nil {
		return nil, err
	}
	return &sr, nil
}

// MergeShards reassembles a full sweep Report from the complete set of
// shard documents of one run, in any order. It validates that the shards
// agree on the universe, config, and output; that every shard index
// 1..Count is present exactly once; and that every universe job slot is
// filled exactly once. The merged report — rendered with the carried
// ShardOutput — is byte-identical to the unsharded run under no_timing
// (wall-clock aggregates are sums across shards, so with timing on they
// differ from a single-process run by construction).
func MergeShards(shards []*ShardReport) (*Report, ShardOutput, error) {
	var out ShardOutput
	if len(shards) == 0 {
		return nil, out, errors.New("sweep: merge: no shard reports")
	}
	ref := shards[0]
	out = ref.Output
	seen := make(map[int]bool, len(shards))
	for _, sr := range shards {
		if sr.Shard.Count != ref.Shard.Count {
			return nil, out, fmt.Errorf("sweep: merge: shard %s disagrees with %s on shard count", sr.Shard, ref.Shard)
		}
		if seen[sr.Shard.Index] {
			return nil, out, fmt.Errorf("sweep: merge: shard %s supplied twice", sr.Shard)
		}
		seen[sr.Shard.Index] = true
		if sr.Universe != ref.Universe {
			return nil, out, fmt.Errorf("sweep: merge: shard %s was cut from a different universe (%d jobs, %.12s…) than shard %s (%d jobs, %.12s…)",
				sr.Shard, sr.Universe.Jobs, sr.Universe.SHA256, ref.Shard, ref.Universe.Jobs, ref.Universe.SHA256)
		}
		if sr.Config != ref.Config {
			return nil, out, fmt.Errorf("sweep: merge: shard %s ran under a different config than shard %s", sr.Shard, ref.Shard)
		}
		if sr.Output != ref.Output {
			return nil, out, fmt.Errorf("sweep: merge: shard %s ran with different output options than shard %s", sr.Shard, ref.Shard)
		}
	}
	if len(shards) != ref.Shard.Count {
		missing := make([]int, 0, ref.Shard.Count)
		for i := 1; i <= ref.Shard.Count; i++ {
			if !seen[i] {
				missing = append(missing, i)
			}
		}
		return nil, out, fmt.Errorf("sweep: merge: have %d of %d shards (missing indices %v)", len(shards), ref.Shard.Count, missing)
	}

	results := make([]JobResult, ref.Universe.Jobs)
	filled := make([]bool, ref.Universe.Jobs)
	var workers int
	var wall time.Duration
	var cache CacheStats
	for _, sr := range shards {
		if sr.Workers > workers {
			workers = sr.Workers
		}
		wall += time.Duration(sr.WallNS)
		addCacheStats(&cache, sr.Cache)
		for i := range sr.Jobs {
			e := &sr.Jobs[i]
			if e.Index < 0 || e.Index >= len(results) {
				return nil, out, fmt.Errorf("sweep: merge: shard %s job index %d outside universe 0..%d", sr.Shard, e.Index, len(results)-1)
			}
			if filled[e.Index] {
				return nil, out, fmt.Errorf("sweep: merge: universe job %d supplied twice", e.Index)
			}
			filled[e.Index] = true
			jr := JobResult{
				Job:       e.Job,
				Clusters:  e.Clusters,
				MaxInputs: e.MaxInputs,
				Areas:     e.Areas,
				Kernels:   e.Kernels,
				Coverage:  e.Coverage,
				Elapsed:   time.Duration(e.ElapsedNS),
			}
			if e.Error != "" {
				jr.Err = errors.New(e.Error)
			}
			if e.Phases != nil {
				jr.Phases = *e.Phases
			}
			results[e.Index] = jr
		}
	}
	for i, ok := range filled {
		if !ok {
			return nil, out, fmt.Errorf("sweep: merge: universe job %d missing from every shard", i)
		}
	}
	rep := &Report{Jobs: results}
	rep.Stats = aggregate(results, workers, wall)
	rep.Cache = cache
	return rep, out, nil
}

// addCacheStats accumulates src into dst, summing every tier counter.
// Entries and capacity sum too: the merged figure describes the union of
// the shards' memory tiers, not any single process.
func addCacheStats(dst *CacheStats, src CacheStats) {
	addStage := func(d *StageStats, s StageStats) {
		d.Hits += s.Hits
		d.DiskHits += s.DiskHits
		d.Misses += s.Misses
		d.Evictions += s.Evictions
	}
	addStage(&dst.Parsed, src.Parsed)
	addStage(&dst.Analyzed, src.Analyzed)
	addStage(&dst.Saturated, src.Saturated)
	dst.Entries += src.Entries
	dst.Capacity += src.Capacity
	dst.DiskErrors += src.DiskErrors
}

// RenderOptions translates the carried shard output into render options.
func (out ShardOutput) RenderOptions() RenderOptions {
	return RenderOptions{Timing: !out.NoTiming, CacheStats: out.CacheStats, Metrics: out.Metrics}
}
