package sweep

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
)

func testJobs() []Job {
	return Matrix([]string{"s27", "s510"}, []int{16, 24}, []int{50}, []int64{1, 2})
}

// The determinism guarantee: the same job matrix produces byte-identical
// deterministic reports at any worker count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	jobs := testJobs()
	render := func(workers int) (jsonOut, csvOut string) {
		t.Helper()
		rep, err := Run(context.Background(), jobs, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Stats.Failed != 0 {
			t.Fatalf("workers=%d: %v", workers, rep.FirstErr())
		}
		var j, c bytes.Buffer
		if err := rep.WriteJSON(&j, RenderOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c, RenderOptions{}); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render(1)
	j8, c8 := render(8)
	if j1 != j8 {
		t.Errorf("JSON reports differ between workers=1 and workers=8:\n--- 1\n%s\n--- 8\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Errorf("CSV reports differ between workers=1 and workers=8:\n--- 1\n%s\n--- 8\n%s", c1, c8)
	}
}

// Every sweep job must price exactly like a serial single-run compilation
// of the same (circuit, l_k, beta, seed) — the Table 10-12 equivalence.
func TestMatchesSerialCompile(t *testing.T) {
	jobs := testJobs()
	rep, err := Run(context.Background(), jobs, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range rep.Jobs {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		c, err := LoadCircuit(jr.Job.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := core.Compile(context.Background(), c, jr.Job.Options())
		if err != nil {
			t.Fatalf("serial job %d: %v", i, err)
		}
		if serial.Areas != jr.Areas {
			t.Errorf("job %d (%s): sweep areas %+v != serial %+v", i, jr.Job, jr.Areas, serial.Areas)
		}
		if len(serial.Partition.Clusters) != jr.Clusters {
			t.Errorf("job %d (%s): clusters %d != serial %d", i, jr.Job, jr.Clusters, len(serial.Partition.Clusters))
		}
	}
}

func TestResultsInJobOrder(t *testing.T) {
	jobs := testJobs()
	rep, err := Run(context.Background(), jobs, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(rep.Jobs), len(jobs))
	}
	for i := range jobs {
		if rep.Jobs[i].Job != jobs[i] {
			t.Fatalf("result %d holds job %+v, want %+v", i, rep.Jobs[i].Job, jobs[i])
		}
	}
}

// A context cancelled before the sweep starts downgrades every job to a
// structured context.Canceled error rather than aborting the sweep.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, testJobs(), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Failed != len(rep.Jobs) {
		t.Fatalf("failed = %d, want all %d", rep.Stats.Failed, len(rep.Jobs))
	}
	for i, jr := range rep.Jobs {
		if !errors.Is(jr.Err, context.Canceled) {
			t.Errorf("job %d error = %v, want context.Canceled", i, jr.Err)
		}
	}
}

// Cancelling mid-sweep stops promptly: in-flight jobs observe ctx through
// core.Compile's phase checks and unstarted jobs never compile.
func TestCancelMidSweepStopsPromptly(t *testing.T) {
	started := make(chan struct{}, 64)
	block := func(ctx context.Context, c *netlist.Circuit, opt core.Options) (*core.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(ctx, testJobs(), Config{Workers: 2, Compile: block})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	<-started // at least one job is in flight
	cancel()
	select {
	case rep := <-done:
		for i, jr := range rep.Jobs {
			if !errors.Is(jr.Err, context.Canceled) {
				t.Errorf("job %d error = %v, want context.Canceled", i, jr.Err)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep did not stop after cancellation")
	}
}

// A panicking job becomes a *PanicError; the rest of the sweep completes.
func TestPanicRecovery(t *testing.T) {
	boom := func(ctx context.Context, c *netlist.Circuit, opt core.Options) (*core.Result, error) {
		if opt.LK == 24 {
			panic("solver corrupted")
		}
		return core.Compile(ctx, c, opt)
	}
	jobs := Matrix([]string{"s27"}, []int{16, 24}, []int{50}, []int64{1})
	rep, err := Run(context.Background(), jobs, Config{Workers: 2, Compile: boom})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Stats.Failed)
	}
	if rep.Jobs[0].Err != nil {
		t.Fatalf("healthy job failed: %v", rep.Jobs[0].Err)
	}
	var pe *PanicError
	if !errors.As(rep.Jobs[1].Err, &pe) {
		t.Fatalf("job error = %v, want *PanicError", rep.Jobs[1].Err)
	}
	if pe.Value != "solver corrupted" || !strings.Contains(pe.Stack, "runJob") {
		t.Errorf("panic not captured: value=%v stack has runJob=%v", pe.Value, strings.Contains(pe.Stack, "runJob"))
	}
}

// JobTimeout caps each job with a deadline derived from the sweep context.
func TestJobTimeout(t *testing.T) {
	slow := func(ctx context.Context, c *netlist.Circuit, opt core.Options) (*core.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	jobs := Matrix([]string{"s27"}, []int{16}, []int{50}, []int64{1})
	rep, err := Run(context.Background(), jobs, Config{Workers: 1, JobTimeout: 10 * time.Millisecond, Compile: slow})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.Jobs[0].Err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", rep.Jobs[0].Err)
	}
}

func TestSetupFailures(t *testing.T) {
	if _, err := Run(context.Background(), []Job{{Circuit: "", LK: 16}}, Config{}); err == nil {
		t.Error("empty circuit name accepted")
	}
	if _, err := Run(context.Background(), []Job{{Circuit: "s27", LK: 0}}, Config{}); err == nil {
		t.Error("LK=0 accepted")
	}
	if _, err := Run(context.Background(), []Job{{Circuit: "no-such-circuit", LK: 16}}, Config{}); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestSpecExpand(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{
		"circuits": ["small"],
		"lks": [16],
		"jobs": [{"circuit": "s27", "lk": 3, "seed": 7}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	last := jobs[len(jobs)-1]
	if last != (Job{Circuit: "s27", LK: 3, Seed: 7}) {
		t.Errorf("explicit job mangled: %+v", last)
	}
	for _, j := range jobs[:len(jobs)-1] {
		if j.LK != 16 || j.Beta != 50 || j.Seed != 1 {
			t.Errorf("matrix defaults not applied: %+v", j)
		}
	}
	if jobs[0].Circuit != "s27" {
		t.Errorf("small alias should start at s27, got %q", jobs[0].Circuit)
	}
}

func TestSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec(strings.NewReader(`{"circuitz": ["s27"]}`)); err == nil {
		t.Error("typo'd spec key accepted")
	}
}

func TestSpecEmpty(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Expand(); err == nil {
		t.Error("empty spec expanded to jobs")
	}
}

func TestExpandCircuitsAll(t *testing.T) {
	names, err := ExpandCircuits([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 18 || names[0] != "s27" || names[len(names)-1] != "s38584.1" {
		t.Errorf("all alias expanded oddly: %v", names)
	}
}

// Options must be copyable across jobs: compiling from a shared Options
// value twice (as the pool does) cannot interfere via shared pointers.
func TestJobOptionsAreValueCopies(t *testing.T) {
	a := Job{Circuit: "s27", LK: 3, Seed: 1}.Options()
	b := Job{Circuit: "s27", LK: 3, Seed: 1}.Options()
	a.Flow.MinVisit = 5
	if b.Flow.MinVisit == 5 {
		t.Fatal("Options.Flow aliased between jobs")
	}
	if a.Beta != 50 {
		t.Fatalf("zero Job.Beta should default to the paper's 50, got %d", a.Beta)
	}
}

func TestStatsAggregation(t *testing.T) {
	rep, err := Run(context.Background(), testJobs(), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.Jobs != 8 || st.Failed != 0 || st.Workers != 4 {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.Wall <= 0 || st.Compute <= 0 || st.JobsPerSec <= 0 {
		t.Fatalf("timing stats missing: %+v", st)
	}
	phaseSum := st.Phases.Graph + st.Phases.SCC + st.Phases.Saturate + st.Phases.Group + st.Phases.Assign + st.Phases.Retime
	if phaseSum <= 0 || phaseSum > st.Compute*2 {
		t.Fatalf("phase totals odd: %+v vs compute %v", st.Phases, st.Compute)
	}
}

func TestKeepResults(t *testing.T) {
	jobs := Matrix([]string{"s27"}, []int{3}, []int{50}, []int64{1})
	rep, err := Run(context.Background(), jobs, Config{Workers: 1, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Result == nil || rep.Jobs[0].Result.Partition == nil {
		t.Fatal("KeepResults did not retain the compilation")
	}
	rep, err = Run(context.Background(), jobs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Result != nil {
		t.Fatal("Result retained without KeepResults")
	}
}

// Coverage campaigns run per job with the job's seed and a single worker,
// so a coverage-enabled sweep stays byte-identical across pool sizes and
// plain sweeps stay free of the coverage column.
func TestCoverageDeterministicAcrossWorkers(t *testing.T) {
	jobs := Matrix([]string{"s27", "s510"}, []int{4, 8}, []int{50}, []int64{1})
	render := func(workers int) (jsonOut, csvOut string) {
		t.Helper()
		rep, err := Run(context.Background(), jobs, Config{Workers: workers, Coverage: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Stats.Failed != 0 {
			t.Fatalf("workers=%d: %v", workers, rep.FirstErr())
		}
		for i := range rep.Jobs {
			if rep.Jobs[i].Coverage == nil {
				t.Fatalf("workers=%d: job %d has no coverage report", workers, i)
			}
		}
		var j, c bytes.Buffer
		if err := rep.WriteJSON(&j, RenderOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c, RenderOptions{}); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render(1)
	j8, c8 := render(8)
	if j1 != j8 {
		t.Errorf("coverage JSON differs between workers=1 and workers=8:\n--- 1\n%s\n--- 8\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Errorf("coverage CSV differs between workers=1 and workers=8:\n--- 1\n%s\n--- 8\n%s", c1, c8)
	}
	if !strings.Contains(j1, `"coverage"`) {
		t.Error("coverage block missing from JSON")
	}
	if !strings.Contains(c1, "coverage") {
		t.Error("coverage column missing from CSV")
	}
}

func TestNoCoverageWithoutFlag(t *testing.T) {
	jobs := Matrix([]string{"s27"}, []int{4}, []int{50}, []int64{1})
	rep, err := Run(context.Background(), jobs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Coverage != nil {
		t.Fatal("coverage report attached without Config.Coverage")
	}
	var c bytes.Buffer
	if err := rep.WriteCSV(&c, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.String(), "coverage") {
		t.Error("coverage column present in a plain sweep")
	}
}
