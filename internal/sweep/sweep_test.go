package sweep

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
)

func testJobs() []Job {
	return Matrix([]string{"s27", "s510"}, []int{16, 24}, []int{50}, []int64{1, 2}, nil)
}

// The determinism guarantee: the same job matrix produces byte-identical
// deterministic reports at any worker count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	jobs := testJobs()
	render := func(workers int) (jsonOut, csvOut string) {
		t.Helper()
		rep, err := Run(context.Background(), jobs, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Stats.Failed != 0 {
			t.Fatalf("workers=%d: %v", workers, rep.FirstErr())
		}
		var j, c bytes.Buffer
		if err := rep.WriteJSON(&j, RenderOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c, RenderOptions{}); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render(1)
	j8, c8 := render(8)
	if j1 != j8 {
		t.Errorf("JSON reports differ between workers=1 and workers=8:\n--- 1\n%s\n--- 8\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Errorf("CSV reports differ between workers=1 and workers=8:\n--- 1\n%s\n--- 8\n%s", c1, c8)
	}
}

// Every sweep job must price exactly like a serial single-run compilation
// of the same (circuit, l_k, beta, seed) — the Table 10-12 equivalence.
func TestMatchesSerialCompile(t *testing.T) {
	jobs := testJobs()
	rep, err := Run(context.Background(), jobs, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range rep.Jobs {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		c, err := LoadCircuit(jr.Job.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := core.Compile(context.Background(), c, jr.Job.Options())
		if err != nil {
			t.Fatalf("serial job %d: %v", i, err)
		}
		if serial.Areas != jr.Areas {
			t.Errorf("job %d (%s): sweep areas %+v != serial %+v", i, jr.Job, jr.Areas, serial.Areas)
		}
		if len(serial.Partition.Clusters) != jr.Clusters {
			t.Errorf("job %d (%s): clusters %d != serial %d", i, jr.Job, jr.Clusters, len(serial.Partition.Clusters))
		}
	}
}

func TestResultsInJobOrder(t *testing.T) {
	jobs := testJobs()
	rep, err := Run(context.Background(), jobs, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(rep.Jobs), len(jobs))
	}
	for i := range jobs {
		if rep.Jobs[i].Job != jobs[i] {
			t.Fatalf("result %d holds job %+v, want %+v", i, rep.Jobs[i].Job, jobs[i])
		}
	}
}

// A context cancelled before the sweep starts downgrades every job to a
// structured context.Canceled error rather than aborting the sweep.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, testJobs(), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Failed != len(rep.Jobs) {
		t.Fatalf("failed = %d, want all %d", rep.Stats.Failed, len(rep.Jobs))
	}
	for i, jr := range rep.Jobs {
		if !errors.Is(jr.Err, context.Canceled) {
			t.Errorf("job %d error = %v, want context.Canceled", i, jr.Err)
		}
	}
}

// Cancelling mid-sweep stops promptly: in-flight jobs observe ctx through
// core.Compile's phase checks and unstarted jobs never compile.
func TestCancelMidSweepStopsPromptly(t *testing.T) {
	started := make(chan struct{}, 64)
	block := func(ctx context.Context, c *netlist.Circuit, opt core.Options) (*core.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(ctx, testJobs(), Config{Workers: 2, Compile: block})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	<-started // at least one job is in flight
	cancel()
	select {
	case rep := <-done:
		for i, jr := range rep.Jobs {
			if !errors.Is(jr.Err, context.Canceled) {
				t.Errorf("job %d error = %v, want context.Canceled", i, jr.Err)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep did not stop after cancellation")
	}
}

// A panicking job becomes a *PanicError; the rest of the sweep completes.
func TestPanicRecovery(t *testing.T) {
	boom := func(ctx context.Context, c *netlist.Circuit, opt core.Options) (*core.Result, error) {
		if opt.LK == 24 {
			panic("solver corrupted")
		}
		return core.Compile(ctx, c, opt)
	}
	jobs := Matrix([]string{"s27"}, []int{16, 24}, []int{50}, []int64{1}, nil)
	rep, err := Run(context.Background(), jobs, Config{Workers: 2, Compile: boom})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Stats.Failed)
	}
	if rep.Jobs[0].Err != nil {
		t.Fatalf("healthy job failed: %v", rep.Jobs[0].Err)
	}
	var pe *PanicError
	if !errors.As(rep.Jobs[1].Err, &pe) {
		t.Fatalf("job error = %v, want *PanicError", rep.Jobs[1].Err)
	}
	if pe.Value != "solver corrupted" || !strings.Contains(pe.Stack, "runJob") {
		t.Errorf("panic not captured: value=%v stack has runJob=%v", pe.Value, strings.Contains(pe.Stack, "runJob"))
	}
}

// JobTimeout caps each job with a deadline derived from the sweep context.
func TestJobTimeout(t *testing.T) {
	slow := func(ctx context.Context, c *netlist.Circuit, opt core.Options) (*core.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	jobs := Matrix([]string{"s27"}, []int{16}, []int{50}, []int64{1}, nil)
	rep, err := Run(context.Background(), jobs, Config{Workers: 1, JobTimeout: 10 * time.Millisecond, Compile: slow})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.Jobs[0].Err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", rep.Jobs[0].Err)
	}
}

func TestSetupFailures(t *testing.T) {
	if _, err := Run(context.Background(), []Job{{Circuit: "", LK: 16}}, Config{}); err == nil {
		t.Error("empty circuit name accepted")
	}
	if _, err := Run(context.Background(), []Job{{Circuit: "s27", LK: 0}}, Config{}); err == nil {
		t.Error("LK=0 accepted")
	}
	if _, err := Run(context.Background(), []Job{{Circuit: "no-such-circuit", LK: 16}}, Config{}); err == nil {
		t.Error("unknown circuit accepted")
	}
}

// A Cache handed in via Config.Cache survives across runs: the second run
// over the same (circuit, seed, flow) prefix reuses every stage, its
// Report.Cache shows only its own traffic (all hits), and Cache.Stats
// accumulates the totals — the process-lifetime behavior the serve daemon
// depends on.
func TestSharedCacheAcrossRuns(t *testing.T) {
	cache := NewCache(0)
	jobs := Matrix([]string{"s27"}, []int{3, 4}, []int{50}, []int64{1}, nil)
	run := func() *Report {
		t.Helper()
		rep, err := Run(context.Background(), jobs, Config{Workers: 2, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Failed != 0 {
			t.Fatal(rep.FirstErr())
		}
		return rep
	}
	cold := run()
	if got := cold.Cache.Saturated; got.Misses != 1 || got.Hits != 1 {
		t.Errorf("cold run saturated stats = %+v, want 1 miss + 1 hit", got)
	}
	warm := run()
	if got := warm.Cache.Saturated; got.Misses != 0 || got.Hits != 2 {
		t.Errorf("warm run saturated stats = %+v, want 0 misses + 2 hits (delta, not cumulative)", got)
	}
	if got := warm.Cache.Parsed.Misses; got != 0 {
		t.Errorf("warm run re-parsed the circuit: %+v", warm.Cache.Parsed)
	}
	total := cache.Stats()
	if got := total.Saturated; got.Misses != 1 || got.Hits != 3 {
		t.Errorf("cumulative saturated stats = %+v, want 1 miss + 3 hits", got)
	}

	// Byte-identical reports, cold or warm: caching may never change output.
	var coldBuf, warmBuf bytes.Buffer
	if err := cold.WriteJSON(&coldBuf, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := warm.WriteJSON(&warmBuf, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if coldBuf.String() != warmBuf.String() {
		t.Errorf("warm-cache report diverged:\n--- cold\n%s\n--- warm\n%s", coldBuf.String(), warmBuf.String())
	}
}

// Cache.Compile is the single-job funnel: it must price exactly like
// core.Compile and share the prefix with sweep jobs in the same cache.
func TestCacheCompileMatchesCoreCompile(t *testing.T) {
	cache := NewCache(0)
	opt := core.DefaultOptions(3, 1)
	viaCache, err := cache.Compile(context.Background(), "s27", nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := LoadCircuit("s27")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Compile(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if viaCache.Areas != direct.Areas {
		t.Errorf("cached compile priced differently:\ncache:  %+v\ndirect: %+v", viaCache.Areas, direct.Areas)
	}
	// A sweep job over the same prefix must hit all three stages.
	rep, err := Run(context.Background(), Matrix([]string{"s27"}, []int{3}, []int{50}, []int64{1}, nil), Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.Cache
	if cs.Parsed.Misses != 0 || cs.Analyzed.Misses != 0 || cs.Saturated.Misses != 0 {
		t.Errorf("sweep after Cache.Compile recomputed the prefix: %+v", cs)
	}
}

func TestExpandCircuitsAll(t *testing.T) {
	names, err := ExpandCircuits([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 18 || names[0] != "s27" || names[len(names)-1] != "s38584.1" {
		t.Errorf("all alias expanded oddly: %v", names)
	}
}

// Options must be copyable across jobs: compiling from a shared Options
// value twice (as the pool does) cannot interfere via shared pointers.
func TestJobOptionsAreValueCopies(t *testing.T) {
	a := Job{Circuit: "s27", LK: 3, Seed: 1}.Options()
	b := Job{Circuit: "s27", LK: 3, Seed: 1}.Options()
	a.Flow.MinVisit = 5
	if b.Flow.MinVisit == 5 {
		t.Fatal("Options.Flow aliased between jobs")
	}
	if a.Beta != 50 {
		t.Fatalf("zero Job.Beta should default to the paper's 50, got %d", a.Beta)
	}
}

func TestStatsAggregation(t *testing.T) {
	rep, err := Run(context.Background(), testJobs(), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.Jobs != 8 || st.Failed != 0 || st.Workers != 4 {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.Wall <= 0 || st.Compute <= 0 || st.JobsPerSec <= 0 {
		t.Fatalf("timing stats missing: %+v", st)
	}
	phaseSum := st.Phases.Graph + st.Phases.SCC + st.Phases.Saturate + st.Phases.Group + st.Phases.Assign + st.Phases.Retime
	if phaseSum <= 0 || phaseSum > st.Compute*2 {
		t.Fatalf("phase totals odd: %+v vs compute %v", st.Phases, st.Compute)
	}
}

func TestKeepResults(t *testing.T) {
	jobs := Matrix([]string{"s27"}, []int{3}, []int{50}, []int64{1}, nil)
	rep, err := Run(context.Background(), jobs, Config{Workers: 1, KeepResults: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Result == nil || rep.Jobs[0].Result.Partition == nil {
		t.Fatal("KeepResults did not retain the compilation")
	}
	rep, err = Run(context.Background(), jobs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Result != nil {
		t.Fatal("Result retained without KeepResults")
	}
}

// Coverage campaigns run per job with the job's seed and a single worker,
// so a coverage-enabled sweep stays byte-identical across pool sizes and
// plain sweeps stay free of the coverage column.
func TestCoverageDeterministicAcrossWorkers(t *testing.T) {
	jobs := Matrix([]string{"s27", "s510"}, []int{4, 8}, []int{50}, []int64{1}, nil)
	render := func(workers int) (jsonOut, csvOut string) {
		t.Helper()
		rep, err := Run(context.Background(), jobs, Config{Workers: workers, Coverage: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Stats.Failed != 0 {
			t.Fatalf("workers=%d: %v", workers, rep.FirstErr())
		}
		for i := range rep.Jobs {
			if rep.Jobs[i].Coverage == nil {
				t.Fatalf("workers=%d: job %d has no coverage report", workers, i)
			}
		}
		var j, c bytes.Buffer
		if err := rep.WriteJSON(&j, RenderOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteCSV(&c, RenderOptions{}); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render(1)
	j8, c8 := render(8)
	if j1 != j8 {
		t.Errorf("coverage JSON differs between workers=1 and workers=8:\n--- 1\n%s\n--- 8\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Errorf("coverage CSV differs between workers=1 and workers=8:\n--- 1\n%s\n--- 8\n%s", c1, c8)
	}
	if !strings.Contains(j1, `"coverage"`) {
		t.Error("coverage block missing from JSON")
	}
	if !strings.Contains(c1, "coverage") {
		t.Error("coverage column missing from CSV")
	}
}

func TestNoCoverageWithoutFlag(t *testing.T) {
	jobs := Matrix([]string{"s27"}, []int{4}, []int{50}, []int64{1}, nil)
	rep, err := Run(context.Background(), jobs, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Coverage != nil {
		t.Fatal("coverage report attached without Config.Coverage")
	}
	var c bytes.Buffer
	if err := rep.WriteCSV(&c, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.String(), "coverage") {
		t.Error("coverage column present in a plain sweep")
	}
}
