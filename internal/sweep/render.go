package sweep

// This file renders reports: JSON for machines, CSV for spreadsheets,
// aligned text for terminals. With Timing off, the JSON and CSV forms are
// byte-for-byte deterministic for a given job matrix — independent of
// worker count, scheduling, and machine speed — which is what makes sweep
// reports diffable across runs and what the determinism tests pin down.

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// RenderOptions selects what the writers emit.
type RenderOptions struct {
	// Timing includes wall-clock fields (per-job elapsed, pool stats).
	// These are non-deterministic; leave Timing false when the output
	// must be reproducible byte-for-byte.
	Timing bool
	// CacheStats includes the artifact cache's per-stage hit/miss/eviction
	// counters (JSON "cache" object, text trailer). Counter totals are
	// deterministic for a given matrix as long as the cache never evicts,
	// so the flag composes with Timing=false.
	CacheStats bool
	// Metrics appends the aggregated kernel-counter table (see
	// Report.Metrics) to the text form and a "metrics" object to the JSON
	// form. The table is deterministic for any worker count, so the flag
	// composes with Timing=false. The CSV form never carries metrics.
	// Latency histograms (Report.Histograms) are fills of wall-clock
	// data, so they render only when Metrics AND Timing are both set;
	// -no-timing output is byte-identical with or without them.
	Metrics bool
}

type jobJSON struct {
	Circuit   string           `json:"circuit"`
	LK        int              `json:"lk"`
	Beta      int              `json:"beta"`
	Seed      int64            `json:"seed"`
	Error     string           `json:"error,omitempty"`
	Clusters  int              `json:"clusters,omitempty"`
	MaxInputs int              `json:"max_inputs,omitempty"`
	Areas     *core.AreaReport `json:"areas,omitempty"`
	Coverage  *coverageJSON    `json:"coverage,omitempty"`
	ElapsedMS float64          `json:"elapsed_ms,omitempty"`
}

// coverageJSON is the compact per-job fault-coverage block: the campaign
// aggregates without the per-cluster detail (`merced -cover` renders the
// full report when that detail is wanted). Batch counts are deliberately
// absent: they depend on the lane width, and the sweep report must stay
// byte-identical across the lanes axis.
type coverageJSON struct {
	Faults    int     `json:"faults"`
	Simulated int     `json:"simulated"`
	Detected  int     `json:"detected"`
	Coverage  float64 `json:"coverage"`
}

type phasesJSON struct {
	Graph    float64 `json:"graph"`
	SCC      float64 `json:"scc"`
	Saturate float64 `json:"saturate"`
	Group    float64 `json:"group"`
	Assign   float64 `json:"assign"`
	Retime   float64 `json:"retime"`
}

type statsJSON struct {
	Jobs       int         `json:"jobs"`
	Failed     int         `json:"failed"`
	Workers    int         `json:"workers,omitempty"`
	WallMS     float64     `json:"wall_ms,omitempty"`
	ComputeMS  float64     `json:"compute_ms,omitempty"`
	JobsPerSec float64     `json:"jobs_per_sec,omitempty"`
	Speedup    float64     `json:"speedup,omitempty"`
	PhasesMS   *phasesJSON `json:"phases_ms,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func stageStatsString(s StageStats) string {
	return fmt.Sprintf("%dh/%dd/%dm/%de", s.Hits, s.DiskHits, s.Misses, s.Evictions)
}

// WriteJSON renders the report as indented JSON: a "jobs" array in input
// order plus a "stats" object. Timing fields appear only under
// opts.Timing.
func (r *Report) WriteJSON(w io.Writer, opts RenderOptions) error {
	out := struct {
		Jobs    []jobJSON                       `json:"jobs"`
		Stats   statsJSON                       `json:"stats"`
		Cache   *CacheStats                     `json:"cache,omitempty"`
		Metrics *obs.Metrics                    `json:"metrics,omitempty"`
		Latency map[string]obs.HistogramSummary `json:"latency,omitempty"`
	}{
		Jobs:  make([]jobJSON, 0, len(r.Jobs)),
		Stats: statsJSON{Jobs: r.Stats.Jobs, Failed: r.Stats.Failed},
	}
	if opts.CacheStats {
		cache := r.Cache
		out.Cache = &cache
	}
	if opts.Metrics {
		out.Metrics = r.Metrics()
		if opts.Timing {
			out.Latency = r.Histograms().Summaries()
		}
	}
	for i := range r.Jobs {
		jr := &r.Jobs[i]
		jj := jobJSON{Circuit: jr.Job.Circuit, LK: jr.Job.LK, Beta: jr.Job.Beta, Seed: jr.Job.Seed}
		if jr.Err != nil {
			jj.Error = jr.Err.Error()
		} else {
			areas := jr.Areas
			jj.Clusters = jr.Clusters
			jj.MaxInputs = jr.MaxInputs
			jj.Areas = &areas
			if cov := jr.Coverage; cov != nil {
				jj.Coverage = &coverageJSON{
					Faults: cov.Total, Simulated: cov.Simulated, Detected: cov.Detected,
					Coverage: cov.Ratio(),
				}
			}
		}
		if opts.Timing {
			jj.ElapsedMS = ms(jr.Elapsed)
		}
		out.Jobs = append(out.Jobs, jj)
	}
	if opts.Timing {
		st := r.Stats
		out.Stats.Workers = st.Workers
		out.Stats.WallMS = ms(st.Wall)
		out.Stats.ComputeMS = ms(st.Compute)
		out.Stats.JobsPerSec = st.JobsPerSec
		out.Stats.Speedup = st.Speedup()
		out.Stats.PhasesMS = &phasesJSON{
			Graph: ms(st.Phases.Graph), SCC: ms(st.Phases.SCC),
			Saturate: ms(st.Phases.Saturate), Group: ms(st.Phases.Group),
			Assign: ms(st.Phases.Assign), Retime: ms(st.Phases.Retime),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// table builds the shared per-job table for the CSV and text writers. The
// coverage column appears only when at least one job carries a campaign
// report, so plain sweeps render exactly as before.
func (r *Report) table(title string, opts RenderOptions) *report.Table {
	hasCoverage := false
	for i := range r.Jobs {
		if r.Jobs[i].Coverage != nil {
			hasCoverage = true
			break
		}
	}
	headers := []string{"circuit", "lk", "beta", "seed", "clusters", "max_inputs",
		"cut_nets", "cuts_on_scc", "covered", "excess",
		"cbit_retimed", "cbit_nonretimed", "ratio_retimed", "ratio_nonretimed", "saving"}
	if hasCoverage {
		headers = append(headers, "coverage")
	}
	headers = append(headers, "error")
	if opts.Timing {
		headers = append(headers, "elapsed")
	}
	t := report.NewTable(title, headers...)
	for i := range r.Jobs {
		jr := &r.Jobs[i]
		errText := ""
		if jr.Err != nil {
			errText = jr.Err.Error()
		}
		row := []interface{}{jr.Job.Circuit, jr.Job.LK, jr.Job.Beta, jr.Job.Seed,
			jr.Clusters, jr.MaxInputs,
			jr.Areas.CutNets, jr.Areas.CutNetsOnSCC, jr.Areas.CoveredCuts, jr.Areas.ExcessCuts,
			jr.Areas.CBITAreaRetimed, jr.Areas.CBITAreaNonRetimed,
			jr.Areas.RatioRetimed, jr.Areas.RatioNonRetimed, jr.Areas.Saving()}
		if hasCoverage {
			cov := ""
			if jr.Coverage != nil {
				cov = fmt.Sprintf("%.4f", jr.Coverage.Ratio())
			}
			row = append(row, cov)
		}
		row = append(row, errText)
		if opts.Timing {
			row = append(row, jr.Elapsed)
		}
		t.AddRowf(row...)
	}
	return t
}

// WriteCSV renders one row per job in input order.
func (r *Report) WriteCSV(w io.Writer, opts RenderOptions) error {
	return r.table("", opts).WriteCSV(w)
}

// WriteText renders the aligned per-job table followed by the pool
// statistics (the latter only under opts.Timing).
func (r *Report) WriteText(w io.Writer, opts RenderOptions) error {
	if err := r.table("Sweep report", opts).Write(w); err != nil {
		return err
	}
	st := r.Stats
	if _, err := fmt.Fprintf(w, "\n%d jobs, %d failed\n", st.Jobs, st.Failed); err != nil {
		return err
	}
	if opts.CacheStats {
		cs := r.Cache
		if _, err := fmt.Fprintf(w, "artifact cache (%d/%d entries): parsed %s, analyzed %s, saturated %s\n",
			cs.Entries, cs.Capacity,
			stageStatsString(cs.Parsed), stageStatsString(cs.Analyzed), stageStatsString(cs.Saturated)); err != nil {
			return err
		}
	}
	if opts.Metrics {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := r.Metrics().WriteTable(w); err != nil {
			return err
		}
		if opts.Timing {
			if hs := r.Histograms(); hs.Len() > 0 {
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
				if err := hs.WriteTable(w); err != nil {
					return err
				}
			}
		}
	}
	if !opts.Timing {
		return nil
	}
	_, err := fmt.Fprintf(w, "workers %d: wall %v, compute %v (%.1fx speedup, %.1f jobs/s)\nphase totals: graph %v, scc %v, saturate %v, group %v, assign %v, retime %v\n",
		st.Workers, st.Wall.Round(time.Millisecond), st.Compute.Round(time.Millisecond),
		st.Speedup(), st.JobsPerSec,
		st.Phases.Graph.Round(time.Millisecond), st.Phases.SCC.Round(time.Millisecond),
		st.Phases.Saturate.Round(time.Millisecond), st.Phases.Group.Round(time.Millisecond),
		st.Phases.Assign.Round(time.Millisecond), st.Phases.Retime.Round(time.Millisecond))
	return err
}
