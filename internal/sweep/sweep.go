// Package sweep is the batch-compilation engine behind `merced -sweep`: it
// runs N independent (circuit, l_k, beta, seed) Merced compilations across a
// bounded worker pool. The paper's Tables 10-12 are exactly such a batch —
// every benchmark crossed with l_k ∈ {16, 24} — and each job is an
// embarrassingly parallel unit, so the engine's only obligations are the
// boring but load-bearing ones:
//
//   - bounded parallelism (default runtime.NumCPU workers),
//   - context cancellation and deadline propagation into every pipeline
//     phase of every job (via the staged core pipeline's ctx),
//   - per-job panic recovery that downgrades a crashed job to a structured
//     *PanicError instead of killing the sweep,
//   - deterministic results: job i's outcome lands at Report.Jobs[i]
//     regardless of worker count or scheduling; phase artifacts are
//     immutable, so jobs share them without cloning the circuit,
//   - shared-prefix reuse: parse/analyze/saturate are functions of
//     (circuit, seed, flow.Config) only, so jobs differing in l_k/β reuse
//     one cached core.Saturated artifact and branch at partitioning (see
//     cache.go),
//   - aggregated per-phase timing, throughput, and cache statistics.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Job is one compilation unit of a sweep: a circuit reference plus the
// experiment coordinates of the paper's Tables 10-12.
type Job struct {
	// Circuit names a built-in benchmark (s27 or a Table 9 circuit) or a
	// .bench netlist path; see LoadCircuit.
	Circuit string `json:"circuit"`
	// LK is the input-size constraint l_k (paper: 16 and 24).
	LK int `json:"lk"`
	// Beta is the Eq. (6) SCC cut-budget multiplier; 0 means the paper's 50.
	Beta int `json:"beta,omitempty"`
	// Seed drives every stochastic step of the job.
	Seed int64 `json:"seed"`
	// Lanes is the coverage batch vector width in 64-bit words (1, 2, 4,
	// or 8); 0 means the fault engine's default. Coverage results are
	// identical at every width (the campaign's lane-width-invariance
	// contract), so this axis varies throughput, not results.
	Lanes int `json:"lanes,omitempty"`
}

// Options returns the core configuration for the job: the paper defaults
// for the job's l_k and seed, with the job's beta applied.
func (j Job) Options() core.Options {
	beta := j.Beta
	if beta == 0 {
		beta = 50
	}
	opt := core.DefaultOptions(j.LK, j.Seed)
	opt.Beta = beta
	return opt
}

func (j Job) String() string {
	return fmt.Sprintf("%s lk=%d beta=%d seed=%d", j.Circuit, j.LK, j.Beta, j.Seed)
}

// CompileFunc is the per-job compilation hook. Config.Compile overrides it
// for tests (fault injection) and future result caches; the default is
// core.Compile.
type CompileFunc func(ctx context.Context, c *netlist.Circuit, opt core.Options) (*core.Result, error)

// Config tunes a sweep run. The zero value runs core.Compile with
// runtime.NumCPU() workers, no per-job deadline, and built-in circuit
// loading.
type Config struct {
	// Workers bounds the pool; <= 0 means runtime.NumCPU().
	Workers int
	// JobTimeout, when positive, caps each job with a context deadline
	// derived from the sweep context.
	JobTimeout time.Duration
	// NoRetimeSolver turns off the Leiserson-Saxe solver for every job
	// (per-SCC bound accounting only), mirroring `-no-retime-solver`.
	NoRetimeSolver bool
	// Lint turns on the per-job design-rule gates.
	Lint bool
	// KeepResults retains each job's full *core.Result (graphs, partitions,
	// retiming labels). Off by default: a Table 10-12 sweep only needs the
	// summary, and full results for thousands of jobs would pin memory.
	// Retained results share the immutable prefix artifacts (circuit,
	// graph, SCC, flow) with other jobs of the same (circuit, seed) —
	// treat them as read-only.
	KeepResults bool
	// NoCache disables shared-prefix artifact reuse: every job runs the
	// whole pipeline itself via core.Compile. The reports are byte-
	// identical either way (a test and a CI step pin that); the switch
	// exists for A/B benchmarking and as an escape hatch.
	NoCache bool
	// CacheEntries bounds the artifact cache; <= 0 means
	// DefaultCacheEntries. Ignored when Cache is set.
	CacheEntries int
	// Cache, when non-nil, is an externally owned artifact cache shared
	// across runs — the serve daemon passes one process-lifetime Cache to
	// every request so repeat circuits hit the Saturated prefix instantly.
	// Report.Cache then counts only this run's hits/misses/evictions (the
	// deltas); Cache.Stats accumulates across every run. When nil, Run
	// constructs a private cache bounded by CacheEntries, which makes the
	// deltas and the totals coincide.
	Cache *Cache
	// Coverage runs a fault-coverage campaign (internal/fault.Campaign)
	// over each successfully compiled job's partition and attaches the
	// report to JobResult.Coverage. Campaigns run single-worker inside the
	// job — the sweep pool is the parallelism — with collapsing on and the
	// job's seed, so coverage results are as deterministic as the
	// compilation itself.
	Coverage bool
	// CoverageMaxPatterns caps the per-fault pattern budget of those
	// campaigns; 0 means the full pseudo-exhaustive budget.
	CoverageMaxPatterns uint64
	// Progress, when non-nil, is called after each job finishes with the
	// number of completed jobs and the total. Calls come concurrently from
	// worker goroutines (done is monotonic but calls may arrive out of
	// order); the callback must be safe for concurrent use and must not
	// write to the report stream.
	Progress func(done, total int)
	// Load resolves Job.Circuit to a netlist; nil means LoadCircuit.
	Load func(name string) (*netlist.Circuit, error)
	// Compile runs one job; nil means the staged cached pipeline (or
	// core.Compile under NoCache). The hook receives the shared normalized
	// circuit — it must not mutate it.
	Compile CompileFunc
}

// JobResult is the outcome of one job. Exactly one of Err or the summary
// fields is meaningful.
type JobResult struct {
	Job Job
	// Err is the structured failure: a compile error, an error wrapping
	// context.Canceled / context.DeadlineExceeded when the sweep was
	// cancelled, or a *PanicError when the job crashed.
	Err error
	// Clusters and MaxInputs summarise the partition.
	Clusters  int
	MaxInputs int
	// Areas is the Table 10-12 pricing of the job.
	Areas core.AreaReport
	// Elapsed and Phases are the job's wall-clock cost.
	Elapsed time.Duration
	Phases  core.Phases
	// Kernels are the job's hot-kernel work counters (see
	// core.KernelCounters); Report.Metrics aggregates them in job order.
	Kernels core.KernelCounters
	// Coverage is the job's fault-coverage campaign report, present only
	// under Config.Coverage.
	Coverage *fault.CampaignReport
	// Result is the full compilation, retained only under
	// Config.KeepResults.
	Result *core.Result
}

// PanicError is a recovered per-job panic, downgraded to an error so one
// crashed job cannot take down the sweep.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the crashing goroutine's stack trace.
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("sweep: job panicked: %v", e.Value) }

// Stats aggregates a finished sweep.
type Stats struct {
	Jobs    int
	Failed  int
	Workers int
	// Wall is the sweep's wall-clock time; Compute is the sum of per-job
	// elapsed times, so Compute/Wall estimates the realised parallelism.
	Wall    time.Duration
	Compute time.Duration
	// Phases sums the per-phase timings across all successful jobs.
	Phases core.Phases
	// JobsPerSec is Jobs / Wall.
	JobsPerSec float64
}

// Speedup is the realised parallelism Compute/Wall (1.0 on one worker).
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Compute) / float64(s.Wall)
}

// Report is a completed sweep: one JobResult per input job, in input order.
type Report struct {
	Jobs  []JobResult
	Stats Stats
	// Cache reports this run's shared-prefix artifact cache traffic:
	// per-stage hits, misses, and evictions attributed to this run's jobs
	// (with a shared Config.Cache that is a delta against the process
	// totals; with a private cache it is everything). Under Config.NoCache
	// the analyzed and saturated counters stay zero; the parsed counters
	// always reflect the circuit preload, which deduplicates through the
	// cache.
	Cache CacheStats
	// parseTimes holds the wall time of each parse the circuit preload
	// actually computed (cache hits contribute nothing), in preload order.
	// It feeds the latency.phase.parse histogram; like every timing it is
	// excluded from deterministic encodings.
	parseTimes []time.Duration
}

// Histograms builds the sweep's latency histograms after the fact, in job
// order, from the per-job result structs — the same aggregation
// discipline as Metrics, applied to timing data. Phase fills follow the
// pipeline: parse (preload computes only), analyze (graph + SCC),
// saturate, partition (group + assign), price (retime); whole jobs fill
// latency.sweep.job. Zero phase durations are skipped — they mark stages
// attributed to another job through the shared-prefix cache. Embedded
// coverage campaigns contribute their per-batch histograms by merging.
// The result is timing data: render it only where a timing trailer would
// render.
func (r *Report) Histograms() *obs.HistogramSet {
	hs := obs.NewHistogramSet()
	for _, d := range r.parseTimes {
		if d > 0 {
			hs.Observe("latency.phase.parse", d)
		}
	}
	observePhase := func(name string, d time.Duration) {
		if d > 0 {
			hs.Observe(name, d)
		}
	}
	for i := range r.Jobs {
		jr := &r.Jobs[i]
		if jr.Err != nil {
			continue
		}
		observePhase("latency.sweep.job", jr.Elapsed)
		observePhase("latency.phase.analyze", jr.Phases.Graph+jr.Phases.SCC)
		observePhase("latency.phase.saturate", jr.Phases.Saturate)
		observePhase("latency.phase.partition", jr.Phases.Group+jr.Phases.Assign)
		observePhase("latency.phase.price", jr.Phases.Retime)
		if jr.Coverage != nil {
			hs.Merge(jr.Coverage.Latency)
		}
	}
	return hs
}

// FirstErr returns the first failed job's error, or nil when every job
// succeeded.
func (r *Report) FirstErr() error {
	for i := range r.Jobs {
		if err := r.Jobs[i].Err; err != nil {
			return fmt.Errorf("job %d (%s): %w", i, r.Jobs[i].Job, err)
		}
	}
	return nil
}

// Run executes the jobs across the worker pool and returns the per-job
// outcomes in input order, independent of worker count and scheduling.
//
// Setup problems — an invalid job or an unloadable circuit — fail the whole
// sweep before any compilation starts. Per-job failures (compile errors,
// panics, cancellation) are recorded in Report.Jobs[i].Err and never abort
// the sweep; cancelling ctx makes every unfinished job report an error
// wrapping ctx.Err() and Run return promptly once in-flight jobs notice.
func Run(ctx context.Context, jobs []Job, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	load := cfg.Load
	if load == nil {
		load = LoadCircuit
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Fail fast on a malformed matrix: a bad job is a spec bug, not an
	// experimental outcome.
	//ctxlint:nocancel pure in-memory validation, microseconds per job; work has not started yet
	for i, j := range jobs {
		if j.Circuit == "" {
			return nil, fmt.Errorf("sweep: job %d: empty circuit name", i)
		}
		if err := j.Options().Validate(); err != nil {
			return nil, fmt.Errorf("sweep: job %d (%s): %w", i, j, err)
		}
	}

	// Preload each distinct circuit once, serially, so load failures are
	// deterministic and the expensive benchmark generators run once per
	// name. The core.Parsed artifact is normalized at construction and
	// immutable afterwards, so workers share it directly — no per-job
	// clone. Loading goes through the cache purely so the parsed-stage
	// hit/miss counters reflect the matrix shape.
	cache := cfg.Cache
	if cache == nil {
		cache = newArtifactCache(cfg.CacheEntries)
	}
	// per tracks this run's own cache traffic; it is written only under the
	// cache mutex and read after the pool has drained.
	per := new([3]StageStats)
	masters := make(map[string]*core.Parsed, len(jobs))
	var parseTimes []time.Duration
	for i, j := range jobs {
		v, _, err := cache.getOrComputeStored(stageParsed, "parsed:"+j.Circuit, per, parsedCodec, func() (any, error) {
			sp := obs.Start(ctx, "stage", "parse "+j.Circuit)
			defer sp.End()
			begin := time.Now()
			c, err := load(j.Circuit)
			if err != nil {
				return nil, err
			}
			p, err := core.NewParsed(c)
			if err == nil {
				parseTimes = append(parseTimes, time.Since(begin))
			}
			return p, err
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: job %d: loading circuit %q: %w", i, j.Circuit, err)
		}
		masters[j.Circuit] = v.(*core.Parsed)
	}

	start := time.Now()
	results := make([]JobResult, len(jobs))
	idx := make(chan int)
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker goroutine claims its own trace lane, so the
			// Chrome trace shows the pool's true occupancy.
			wctx := obs.LaneContext(ctx, fmt.Sprintf("sweep-worker-%d", w))
			traced := obs.Enabled(wctx)
			log := obs.L(wctx)
			for i := range idx {
				var sp obs.Span
				if traced {
					sp = obs.Start(wctx, "sweep", "job "+jobs[i].String())
				}
				results[i] = runJob(wctx, jobs[i], masters[jobs[i].Circuit], cache, per, cfg)
				sp.End()
				if err := results[i].Err; err != nil {
					log.Warn("sweep job failed", "job", jobs[i].String(), "err", err)
				} else {
					log.Debug("sweep job done", "job", jobs[i].String(), "elapsed", results[i].Elapsed)
				}
				if cfg.Progress != nil {
					cfg.Progress(int(done.Add(1)), len(jobs))
				}
			}
		}(w)
	}
	// Feed every index even after cancellation: runJob observes ctx.Err()
	// first thing, so unstarted jobs drain instantly with a structured
	// cancellation error instead of a half-empty report.
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &Report{Jobs: results, parseTimes: parseTimes}
	rep.Stats = aggregate(results, workers, time.Since(start))
	rep.Cache = cache.statsFor(per)
	obs.L(ctx).Info("sweep done", "jobs", rep.Stats.Jobs,
		"failed", rep.Stats.Failed, "workers", rep.Stats.Workers,
		"wall", rep.Stats.Wall)
	return rep, nil
}

func runJob(ctx context.Context, j Job, master *core.Parsed, cache *Cache, per *[3]StageStats, cfg Config) (res JobResult) {
	res.Job = j
	defer func() {
		if r := recover(); r != nil {
			res = JobResult{Job: j, Err: &PanicError{Value: r, Stack: string(debug.Stack())}}
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("sweep: job not started: %w", err)
		return res
	}
	if cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.JobTimeout)
		defer cancel()
	}
	opt := j.Options()
	if cfg.NoRetimeSolver {
		opt.SolveRetiming = false
	}
	if cfg.Lint {
		opt.Lint = true
	}
	begin := time.Now()
	var r *core.Result
	var err error
	switch {
	case cfg.Compile != nil:
		r, err = cfg.Compile(ctx, master.Circuit(), opt)
	case cfg.NoCache:
		// Compile normalizes its circuit in place, so the from-scratch
		// path clones the shared master (exactly what every job did
		// before the staged pipeline existed).
		r, err = core.Compile(ctx, master.Circuit().Clone(), opt)
	default:
		r, err = compileStaged(ctx, master, cache, per, opt)
	}
	res.Elapsed = time.Since(begin)
	if err != nil {
		res.Err = err
		return res
	}
	res.Clusters = len(r.Partition.Clusters)
	res.MaxInputs = r.Partition.MaxInputs()
	res.Areas = r.Areas
	res.Phases = r.Phases
	res.Kernels = r.Counters
	if cfg.Coverage {
		// The campaign reads the shared normalized circuit and the job's
		// own partition; single-worker because the sweep pool is already
		// saturating the machine, collapsing on because it is strictly
		// cheaper at identical coverage.
		cov, err := fault.Campaign(ctx, master.Circuit(), r.Partition, fault.CampaignOptions{
			MaxPatterns: cfg.CoverageMaxPatterns,
			Seed:        j.Seed,
			Workers:     1,
			LaneWords:   j.Lanes,
			Collapse:    true,
		})
		if err != nil {
			res.Err = fmt.Errorf("sweep: coverage campaign: %w", err)
			return res
		}
		res.Coverage = cov
	}
	if cfg.KeepResults {
		res.Result = r
	}
	return res
}

// compileStaged runs one job over the staged pipeline, reusing cached
// analyze/saturate artifacts for the job's (circuit, seed, flow) prefix and
// branching at partitioning via core.CompileFrom. The shared-stage phase
// timings are attributed only to the job that actually computed the stage,
// so aggregated phase totals measure real work, not double-counted reuse.
func compileStaged(ctx context.Context, p *core.Parsed, cache *Cache, per *[3]StageStats, opt core.Options) (*core.Result, error) {
	av, computedA, err := cacheStagedArtifact(ctx, cache, stageAnalyzed, p.AnalyzeKey(), per, analyzedCodec(p), func() (any, error) {
		return core.Analyze(ctx, p)
	})
	if err != nil {
		return nil, err
	}
	a := av.(*core.Analyzed)

	fcfg := opt.FlowConfig()
	sv, computedS, err := cacheStagedArtifact(ctx, cache, stageSaturated, a.SaturateKey(fcfg), per, saturatedCodec(a), func() (any, error) {
		return core.SaturateNetwork(ctx, a, fcfg)
	})
	if err != nil {
		return nil, err
	}
	s := sv.(*core.Saturated)

	r, err := core.CompileFrom(ctx, s, opt)
	if r != nil {
		if computedA {
			r.Phases.Graph, r.Phases.SCC = a.GraphTime, a.SCCTime
		}
		if computedS {
			r.Phases.Saturate = s.SaturateTime
		}
	}
	return r, err
}

// cacheStagedArtifact wraps artifactCache.getOrCompute with one retry rule:
// when a *shared* computation fails with another job's cancellation while
// this job's own context is still live, request again (the failed entry was
// dropped, so the retry recomputes under this job's context).
func cacheStagedArtifact(ctx context.Context, cache *Cache, st cacheStage, key string, per *[3]StageStats, codec *stageCodec, fn func() (any, error)) (any, bool, error) {
	for {
		v, computed, err := cache.getOrComputeStored(st, key, per, codec, fn)
		if err == nil || computed || ctx.Err() != nil ||
			!(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return v, computed, err
		}
	}
}

func aggregate(results []JobResult, workers int, wall time.Duration) Stats {
	st := Stats{Jobs: len(results), Workers: workers, Wall: wall}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			st.Failed++
			continue
		}
		st.Compute += r.Elapsed
		st.Phases.Graph += r.Phases.Graph
		st.Phases.SCC += r.Phases.SCC
		st.Phases.Saturate += r.Phases.Saturate
		st.Phases.Group += r.Phases.Group
		st.Phases.Assign += r.Phases.Assign
		st.Phases.Retime += r.Phases.Retime
	}
	if wall > 0 {
		st.JobsPerSec = float64(st.Jobs) / wall.Seconds()
	}
	return st
}

// LoadCircuit resolves a Job.Circuit reference: a name containing a path
// separator or ending in ".bench" is parsed as a netlist file; anything
// else must be a built-in benchmark (s27 or a Table 9 circuit).
func LoadCircuit(name string) (*netlist.Circuit, error) {
	if strings.HasSuffix(name, ".bench") || strings.ContainsRune(name, '/') || strings.ContainsRune(name, os.PathSeparator) {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(name, f)
	}
	return bench89.Load(name)
}
