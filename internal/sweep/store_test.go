package sweep

// Tests for the two-tier cache: the memory LRU over a persistent
// internal/cas store. The properties pinned here are the tentpole's
// acceptance criteria — a warm cache directory serves every shared-prefix
// stage from disk with zero recomputes, and a corrupted entry is
// quarantined and transparently recomputed with byte-identical output.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cas"
)

// storeDir opens a cas store in a fresh temp dir.
func storeDir(t *testing.T) (*cas.Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := cas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, dir
}

// twoTierMatrix is a small matrix with shared prefixes: 2 circuits x 2 lks
// x 1 seed — each circuit parses/analyzes/saturates once, partitions twice.
func twoTierMatrix() []Job {
	return []Job{
		{Circuit: "s27", LK: 3, Beta: 50, Seed: 1},
		{Circuit: "s27", LK: 4, Beta: 50, Seed: 1},
		{Circuit: "s1423", LK: 16, Beta: 50, Seed: 1},
		{Circuit: "s1423", LK: 24, Beta: 50, Seed: 1},
	}
}

// renderAll renders a report deterministically (no timing).
func renderAll(t *testing.T, rep *Report) (string, string) {
	t.Helper()
	var j, c bytes.Buffer
	if err := rep.WriteJSON(&j, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&c, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	return j.String(), c.String()
}

func runWithStore(t *testing.T, st *cas.Store) (*Report, *Cache) {
	t.Helper()
	cache := NewCacheWithStore(0, st)
	rep, err := Run(context.Background(), twoTierMatrix(), Config{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	cache.Flush()
	return rep, cache
}

func TestWarmStoreServesEveryStageFromDisk(t *testing.T) {
	st, _ := storeDir(t)

	cold, _ := runWithStore(t, st)
	coldJSON, coldCSV := renderAll(t, cold)
	cs := cold.Cache
	if cs.Parsed.Misses != 2 || cs.Analyzed.Misses != 2 || cs.Saturated.Misses != 2 {
		t.Fatalf("cold misses = %d/%d/%d, want 2/2/2", cs.Parsed.Misses, cs.Analyzed.Misses, cs.Saturated.Misses)
	}
	if cs.Parsed.DiskHits+cs.Analyzed.DiskHits+cs.Saturated.DiskHits != 0 {
		t.Fatalf("cold run reported disk hits: %+v", cs)
	}

	// A fresh cache over the same store: every stage must come from disk,
	// zero recomputes, byte-identical report.
	warm, _ := runWithStore(t, st)
	warmJSON, warmCSV := renderAll(t, warm)
	ws := warm.Cache
	if ws.Parsed.Misses+ws.Analyzed.Misses+ws.Saturated.Misses != 0 {
		t.Fatalf("warm run recomputed: parsed %dm, analyzed %dm, saturated %dm",
			ws.Parsed.Misses, ws.Analyzed.Misses, ws.Saturated.Misses)
	}
	if ws.Parsed.DiskHits != 2 || ws.Analyzed.DiskHits != 2 || ws.Saturated.DiskHits != 2 {
		t.Fatalf("warm disk hits = %d/%d/%d, want 2/2/2", ws.Parsed.DiskHits, ws.Analyzed.DiskHits, ws.Saturated.DiskHits)
	}
	if ws.DiskErrors != 0 {
		t.Fatalf("warm run reported %d disk errors", ws.DiskErrors)
	}
	if warmJSON != coldJSON {
		t.Error("warm JSON report differs from cold run")
	}
	if warmCSV != coldCSV {
		t.Error("warm CSV report differs from cold run")
	}
}

// TestCorruptStoreEntryRecomputed is the satellite regression test: a
// truncated CAS entry must be detected, quarantined, and the stage
// transparently recomputed with output byte-identical to a cold run.
func TestCorruptStoreEntryRecomputed(t *testing.T) {
	st, dir := storeDir(t)
	cold, _ := runWithStore(t, st)
	coldJSON, coldCSV := renderAll(t, cold)

	// Truncate every saturated entry on disk.
	corrupted := 0
	err := filepath.WalkDir(filepath.Join(dir, "saturated"), func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		corrupted++
		return os.WriteFile(p, data[:len(data)/2], 0o644)
	})
	if err != nil || corrupted == 0 {
		t.Fatalf("corrupting saturated entries: n=%d err=%v", corrupted, err)
	}

	warm, _ := runWithStore(t, st)
	warmJSON, warmCSV := renderAll(t, warm)
	ws := warm.Cache
	if ws.Saturated.Misses != int64(corrupted) {
		t.Fatalf("saturated misses = %d, want %d recomputes", ws.Saturated.Misses, corrupted)
	}
	if ws.DiskErrors == 0 {
		t.Fatal("corruption did not surface in DiskErrors")
	}
	if warmJSON != coldJSON || warmCSV != coldCSV {
		t.Fatal("recomputed report differs from cold run")
	}
	// The bad entries moved to quarantine and the recomputes healed the
	// store: a third run is all disk hits again.
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qents) != corrupted {
		t.Fatalf("quarantine holds %d files (err=%v), want %d", len(qents), err, corrupted)
	}
	healed, _ := runWithStore(t, st)
	hs := healed.Cache
	if hs.Saturated.Misses != 0 || hs.Saturated.DiskHits != int64(corrupted) {
		t.Fatalf("healed run: %d misses, %d disk hits, want 0/%d", hs.Saturated.Misses, hs.Saturated.DiskHits, corrupted)
	}
}

// TestStoreErrorsNeverCached: a store whose Put always fails must not
// affect results — write-behind errors only count. The counter is
// atomic: Put runs on concurrent write-behind goroutines.
type failingStore struct{ puts atomic.Int64 }

func (f *failingStore) Get(stage, key string, schema int) ([]byte, bool, error) {
	return nil, false, nil
}
func (f *failingStore) Put(stage, key string, schema int, payload []byte) error {
	f.puts.Add(1)
	return os.ErrPermission
}

func TestFailingStoreDegradesGracefully(t *testing.T) {
	cache := NewCacheWithStore(0, &failingStore{})
	rep, err := Run(context.Background(), twoTierMatrix()[:2], Config{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	cache.Flush()
	if rep.FirstErr() != nil {
		t.Fatalf("jobs failed under a broken store: %v", rep.FirstErr())
	}
	if got := cache.Stats().DiskErrors; got == 0 {
		t.Fatal("failed writes not counted as disk errors")
	}
}

func TestTrailerShowsTierSplit(t *testing.T) {
	st, _ := storeDir(t)
	runWithStore(t, st)
	warm, _ := runWithStore(t, st)
	var b bytes.Buffer
	if err := warm.WriteText(&b, RenderOptions{CacheStats: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "saturated 2h/2d/0m/0e") {
		t.Fatalf("trailer missing tier split:\n%s", b.String())
	}
}
