package sweep

// Tests for the shard/merge protocol: the reassembled report must be
// byte-identical to the unsharded run, empty shards must merge cleanly,
// and mismatched shard sets must be refused.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
)

// failLKCompile is a CompileFunc that fails every job at the given lk and
// delegates the rest to core.Compile.
func failLKCompile(lk int) CompileFunc {
	return func(ctx context.Context, c *netlist.Circuit, opt core.Options) (*core.Result, error) {
		if opt.LK == lk {
			return nil, errors.New("injected failure")
		}
		return core.Compile(ctx, c.Clone(), opt)
	}
}

func shardUniverse() []Job {
	return []Job{
		{Circuit: "s27", LK: 3, Beta: 50, Seed: 1},
		{Circuit: "s27", LK: 4, Beta: 50, Seed: 1},
		{Circuit: "s27", LK: 3, Beta: 25, Seed: 2},
		{Circuit: "s27", LK: 4, Beta: 25, Seed: 2},
		{Circuit: "s27", LK: 5, Beta: 50, Seed: 1},
	}
}

// runShards executes the universe split n ways and returns the shard
// documents after a JSON round-trip (exactly what merced merge consumes).
func runShards(t *testing.T, universe []Job, n int, out ShardOutput) []*ShardReport {
	t.Helper()
	var shards []*ShardReport
	for i := 1; i <= n; i++ {
		sh := Shard{Index: i, Count: n}
		jobs, globals := sh.Select(universe)
		rep, err := Run(context.Background(), jobs, Config{Workers: 2})
		if err != nil {
			t.Fatalf("shard %s: %v", sh, err)
		}
		var buf bytes.Buffer
		if err := BuildShardReport(sh, universe, globals, rep, ShardConfig{}, out).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		sr, err := ReadShardReport(&buf)
		if err != nil {
			t.Fatalf("shard %s round-trip: %v", sh, err)
		}
		shards = append(shards, sr)
	}
	return shards
}

func TestParseShard(t *testing.T) {
	sh, err := ParseShard("2/3")
	if err != nil || sh != (Shard{Index: 2, Count: 3}) {
		t.Fatalf("ParseShard(2/3) = %+v, %v", sh, err)
	}
	for _, bad := range []string{"", "3", "0/4", "5/4", "-1/4", "a/b", "1/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestShardSelectPartitions(t *testing.T) {
	universe := shardUniverse()
	const n = 3
	seen := make([]bool, len(universe))
	for i := 1; i <= n; i++ {
		jobs, globals := (Shard{Index: i, Count: n}).Select(universe)
		if len(jobs) != len(globals) {
			t.Fatalf("shard %d: %d jobs, %d globals", i, len(jobs), len(globals))
		}
		for k, g := range globals {
			if seen[g] {
				t.Fatalf("universe job %d selected twice", g)
			}
			seen[g] = true
			if jobs[k] != universe[g] {
				t.Fatalf("shard %d slot %d: job %v != universe[%d] %v", i, k, jobs[k], g, universe[g])
			}
		}
	}
	for g, ok := range seen {
		if !ok {
			t.Fatalf("universe job %d never selected", g)
		}
	}
}

func TestMergeMatchesUnshardedRun(t *testing.T) {
	universe := shardUniverse()
	full, err := Run(context.Background(), universe, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"json", "csv", "text"} {
		out := ShardOutput{Format: format, NoTiming: true}
		merged, gotOut, err := MergeShards(runShards(t, universe, 3, out))
		if err != nil {
			t.Fatal(err)
		}
		if gotOut != out {
			t.Fatalf("merge returned output %+v, want %+v", gotOut, out)
		}
		var want, got bytes.Buffer
		render := func(rep *Report, w *bytes.Buffer) {
			var rerr error
			switch format {
			case "json":
				rerr = rep.WriteJSON(w, out.RenderOptions())
			case "csv":
				rerr = rep.WriteCSV(w, out.RenderOptions())
			default:
				rerr = rep.WriteText(w, out.RenderOptions())
			}
			if rerr != nil {
				t.Fatal(rerr)
			}
		}
		render(full, &want)
		render(merged, &got)
		if want.String() != got.String() {
			t.Errorf("%s: merged report differs from unsharded run:\n--- unsharded ---\n%s--- merged ---\n%s", format, want.String(), got.String())
		}
	}
}

// TestMergeShardDocumentsDeterministic: under no_timing the shard files
// themselves are byte-identical across runs (what CI diffs rely on).
func TestShardDocumentsDeterministic(t *testing.T) {
	universe := shardUniverse()
	out := ShardOutput{Format: "json", NoTiming: true}
	render := func() string {
		var b strings.Builder
		for _, sr := range runShards(t, universe, 2, out) {
			var buf bytes.Buffer
			if err := sr.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			b.WriteString(buf.String())
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatal("shard documents differ between identical runs")
	}
}

func TestEmptyShardsMergeCleanly(t *testing.T) {
	universe := shardUniverse()[:2]
	const n = 5 // more shards than jobs: shards 3..5 are empty
	shards := runShards(t, universe, n, ShardOutput{Format: "json", NoTiming: true})
	for i := 2; i < n; i++ {
		if len(shards[i].Jobs) != 0 {
			t.Fatalf("shard %d carries %d jobs, want 0", i+1, len(shards[i].Jobs))
		}
	}
	merged, _, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Jobs) != len(universe) || merged.Stats.Jobs != len(universe) {
		t.Fatalf("merged %d jobs, want %d", len(merged.Jobs), len(universe))
	}
	if merged.FirstErr() != nil {
		t.Fatal(merged.FirstErr())
	}
}

func TestMergeValidation(t *testing.T) {
	universe := shardUniverse()
	out := ShardOutput{Format: "json", NoTiming: true}
	shards := runShards(t, universe, 3, out)

	if _, _, err := MergeShards(nil); err == nil {
		t.Error("merged zero shards")
	}
	if _, _, err := MergeShards(shards[:2]); err == nil || !strings.Contains(err.Error(), "missing indices [3]") {
		t.Errorf("incomplete set: err = %v", err)
	}
	if _, _, err := MergeShards([]*ShardReport{shards[0], shards[0], shards[1]}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate shard: err = %v", err)
	}

	// A shard cut from a different universe must be refused.
	other := runShards(t, universe[:4], 3, out)
	mixed := []*ShardReport{shards[0], shards[1], other[2]}
	if _, _, err := MergeShards(mixed); err == nil || !strings.Contains(err.Error(), "different universe") {
		t.Errorf("universe mismatch: err = %v", err)
	}

	// A shard run under a different config must be refused.
	bad := *shards[2]
	bad.Config.NoRetimeSolver = true
	if _, _, err := MergeShards([]*ShardReport{shards[0], shards[1], &bad}); err == nil || !strings.Contains(err.Error(), "different config") {
		t.Errorf("config mismatch: err = %v", err)
	}
}

// TestMergePreservesJobErrors: a failed job's error string survives the
// shard round-trip, renders identically to the unsharded run, and keeps
// the merged report's exit-1 contract (FirstErr non-nil).
func TestMergePreservesJobErrors(t *testing.T) {
	universe := shardUniverse()
	failing := failLKCompile(4)
	out := ShardOutput{Format: "json", NoTiming: true}

	full, err := Run(context.Background(), universe, Config{Workers: 1, Compile: failing})
	if err != nil {
		t.Fatal(err)
	}
	var shards []*ShardReport
	for i := 1; i <= 2; i++ {
		sh := Shard{Index: i, Count: 2}
		jobs, globals := sh.Select(universe)
		rep, err := Run(context.Background(), jobs, Config{Workers: 1, Compile: failing})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := BuildShardReport(sh, universe, globals, rep, ShardConfig{}, out).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		sr, err := ReadShardReport(&buf)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sr)
	}
	merged, _, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if merged.FirstErr() == nil {
		t.Fatal("merged report lost the job failures")
	}
	var want, got bytes.Buffer
	if err := full.WriteJSON(&want, out.RenderOptions()); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&got, out.RenderOptions()); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("merged report with failures differs:\n--- unsharded ---\n%s--- merged ---\n%s", want.String(), got.String())
	}
}
