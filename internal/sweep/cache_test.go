package sweep

// Tests for the shared-prefix artifact cache: the singleflight guarantee
// (one computation per key no matter how many workers race), the LRU
// bound, and the error-transparency rule. The concurrent tests are the
// ones `go test -race` leans on.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Singleflight: N concurrent requesters for one key run the computation
// exactly once and all observe the same value; the stats attribute one
// miss to the computing caller and a hit to everyone else.
func TestCacheSingleflight(t *testing.T) {
	const goroutines = 16
	cache := newArtifactCache(0)
	var calls atomic.Int64
	var wg sync.WaitGroup
	values := make([]any, goroutines)
	computedCount := atomic.Int64{}
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, computed, err := cache.getOrCompute(stageSaturated, "k", func() (any, error) {
				calls.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return "artifact", nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			if computed {
				computedCount.Add(1)
			}
			values[i] = v
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("computation ran %d times, want exactly 1", got)
	}
	if got := computedCount.Load(); got != 1 {
		t.Errorf("%d callers reported computed=true, want exactly 1", got)
	}
	for i, v := range values {
		if v != "artifact" {
			t.Errorf("goroutine %d got %v", i, v)
		}
	}
	st := cache.Stats()
	if st.Saturated.Misses != 1 || st.Saturated.Hits != goroutines-1 {
		t.Errorf("stats = %dh/%dm, want %dh/1m", st.Saturated.Hits, st.Saturated.Misses, goroutines-1)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// Failed computations must never be cached: the next request for the key
// recomputes, so one job's cancellation cannot poison its siblings.
func TestCacheErrorsNotCached(t *testing.T) {
	cache := newArtifactCache(0)
	boom := errors.New("transient")
	var calls int
	fn := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := cache.getOrCompute(stageAnalyzed, "k", fn); !errors.Is(err, boom) {
		t.Fatalf("first call: err = %v, want %v", err, boom)
	}
	v, computed, err := cache.getOrCompute(stageAnalyzed, "k", fn)
	if err != nil || v != "ok" {
		t.Fatalf("second call: v=%v err=%v, want ok/nil", v, err)
	}
	if !computed {
		t.Error("second call should have recomputed after the cached failure was dropped")
	}
	st := cache.Stats()
	if st.Analyzed.Misses != 2 || st.Analyzed.Hits != 0 {
		t.Errorf("stats = %dh/%dm, want 0h/2m", st.Analyzed.Hits, st.Analyzed.Misses)
	}
}

// The LRU bound: with capacity 2, inserting a third key evicts the least
// recently used entry — and touching an entry refreshes its recency.
func TestCacheEvictionLRU(t *testing.T) {
	cache := newArtifactCache(2)
	get := func(key string) (any, bool) {
		v, computed, err := cache.getOrCompute(stageParsed, key, func() (any, error) { return key, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v, computed
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now the LRU entry
	get("c") // evicts b
	st := cache.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if st.Parsed.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Parsed.Evictions)
	}
	if _, computed := get("a"); computed {
		t.Error("a was evicted but should have been kept (recently used)")
	}
	if _, computed := get("b"); !computed {
		t.Error("b should have been evicted and recomputed")
	}
}

// Concurrent churn across many keys with a tight bound: values must always
// match their key (no cross-key bleed), and the entry count must respect
// the bound once the dust settles. Run under -race this is the cache's
// main data-race probe.
func TestCacheConcurrentChurn(t *testing.T) {
	cache := newArtifactCache(4)
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := keys[(g+i)%len(keys)]
				v, _, err := cache.getOrCompute(cacheStage(i%3), key, func() (any, error) {
					return "v:" + key, nil
				})
				if err != nil {
					t.Errorf("key %s: %v", key, err)
					return
				}
				if v != "v:"+key {
					t.Errorf("key %s: got %v", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Entries > 4 {
		t.Errorf("entries = %d exceeds capacity 4 after quiescence", st.Entries)
	}
	total := st.Parsed.Hits + st.Parsed.Misses + st.Analyzed.Hits + st.Analyzed.Misses +
		st.Saturated.Hits + st.Saturated.Misses
	if total != 8*200 {
		t.Errorf("hit+miss total = %d, want %d", total, 8*200)
	}
}

// Zero and negative capacities fall back to the default bound.
func TestCacheDefaultCapacity(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		if got := newArtifactCache(capacity).Stats().Capacity; got != DefaultCacheEntries {
			t.Errorf("newArtifactCache(%d).Capacity = %d, want %d", capacity, got, DefaultCacheEntries)
		}
	}
	if got := newArtifactCache(7).Stats().Capacity; got != 7 {
		t.Errorf("explicit capacity not honoured: got %d, want 7", got)
	}
}
