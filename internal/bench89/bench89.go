// Package bench89 supplies the benchmark circuits of the paper's section 4.
// The exact ISCAS89 s27 netlist (the paper's own worked example, Figure 2)
// is embedded; the other sixteen circuits of Table 9 are produced by a
// deterministic seeded generator that matches each circuit's published
// statistics — primary inputs, flip-flop count, combinational gate count,
// inverter count, estimated area (±2%) — and the Table 10 "DFFs on SCC"
// feedback structure. See DESIGN.md §4 for the substitution rationale.
package bench89

import (
	"fmt"

	"repro/internal/netlist"
)

// S27Bench is the exact ISCAS89 s27 netlist.
const S27Bench = `# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// S27 parses and returns the embedded s27 circuit.
func S27() (*netlist.Circuit, error) {
	return netlist.ParseBenchString("s27", S27Bench)
}

// Spec is one row of the paper's Table 9 plus the Table 10 feedback figure.
type Spec struct {
	Name      string
	PIs       int
	DFFs      int
	Gates     int // combinational gates excluding inverters
	Inverters int
	Area      float64 // paper's estimated area
	DFFsOnSCC int     // Table 10 column 3: flip-flops on strongly connected components
}

// Specs lists the seventeen ISCAS89 circuits of Table 9, in the paper's
// order.
var Specs = []Spec{
	{"s510", 19, 6, 179, 32, 547, 6},
	{"s420.1", 18, 16, 140, 78, 620, 16},
	{"s641", 35, 19, 107, 272, 832, 15},
	{"s713", 35, 19, 139, 254, 892, 15},
	{"s820", 18, 5, 256, 33, 943, 5},
	{"s832", 18, 5, 262, 25, 961, 5},
	{"s838.1", 34, 32, 288, 158, 1268, 32},
	{"s1423", 17, 74, 490, 167, 2238, 71},
	{"s5378", 35, 179, 1004, 1775, 6241, 124},
	{"s9234.1", 36, 211, 2027, 3570, 11467, 172},
	{"s9234", 19, 228, 2027, 3570, 11637, 173},
	{"s13207.1", 62, 638, 2573, 5378, 19171, 462},
	{"s13207", 31, 669, 2573, 5378, 19476, 463},
	{"s15850.1", 77, 534, 3448, 6324, 21305, 487},
	{"s35932", 35, 1728, 12204, 3861, 50625, 1728},
	{"s38417", 28, 1636, 8709, 13470, 52768, 1166},
	{"s38584.1", 38, 1426, 11448, 7805, 55147, 1424},
}

// SpecByName returns the spec for a Table 9 circuit.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Load returns a benchmark circuit by name: "s27" exactly, Table 9 names
// synthetically (deterministic per name).
func Load(name string) (*netlist.Circuit, error) {
	if name == "s27" {
		return S27()
	}
	spec, ok := SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("bench89: unknown circuit %q", name)
	}
	return Generate(spec, seedFor(name))
}

// SmallSpecs returns the specs with area below the threshold, for tests
// that must stay fast.
func SmallSpecs(maxArea float64) []Spec {
	var out []Spec
	for _, s := range Specs {
		if s.Area <= maxArea {
			out = append(out, s)
		}
	}
	return out
}

func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, b := range []byte(name) {
		h ^= int64(b)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}
