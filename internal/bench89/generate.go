package bench89

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// Generate builds a synthetic sequential circuit matching the spec's
// published statistics. The construction is staged so that the only cycles
// run through the designated "loop" flip-flops (rings closed through a
// dedicated hop gate each), reproducing the DFFs-on-SCC structure of the
// paper's Table 10, while pipeline flip-flops cross stage boundaries
// strictly forward. The same (spec, seed) pair always yields the identical
// netlist.
func Generate(spec Spec, seed int64) (*netlist.Circuit, error) {
	if spec.DFFsOnSCC > spec.DFFs {
		return nil, fmt.Errorf("bench89: %s: DFFsOnSCC %d > DFFs %d", spec.Name, spec.DFFsOnSCC, spec.DFFs)
	}
	if spec.Gates < spec.DFFsOnSCC {
		return nil, fmt.Errorf("bench89: %s: gate budget %d below ring hop gates %d", spec.Name, spec.Gates, spec.DFFsOnSCC)
	}
	rng := rand.New(rand.NewSource(seed))
	c := netlist.New(spec.Name)

	stages := 3 + spec.Gates/1500
	if stages > 8 {
		stages = 8
	}

	b := &builder{
		c:       c,
		rng:     rng,
		pools:   make([][]string, stages),
		unread:  make([][]string, stages),
		cumSize: make([]int, stages),
		invOf:   make(map[string]string),
	}

	// Primary inputs -> stage 0. Every PI is queued as a mandatory fanin so
	// none ends up dangling (a dangling PI would shrink the circuit's real
	// input count below Table 9's figure).
	for i := 0; i < spec.PIs; i++ {
		name := fmt.Sprintf("PI%d", i)
		if err := c.AddInput(name); err != nil {
			return nil, err
		}
		b.addSignal(0, name)
		b.mustUse = append(b.mustUse, name)
	}

	// Plan flip-flop rings (SCC structure). Each ring of size k consumes k
	// hop gates; the hop fanin fillers are wired at the end.
	// Each hop either runs through a NAND gate or connects FF to FF
	// directly (a shift-register arc). Direct hops make the loops
	// register-dense the way real ISCAS89 datapath loops are, which is
	// what lets retiming cover most SCC cut nets (paper Table 12).
	type ringPlan struct {
		stage int
		ffs   []string
		hops  []string // "" means a direct FF->FF connection
	}
	var rings []ringPlan
	ffIdx, hopIdx, hopGates := 0, 0, 0
	remaining := spec.DFFsOnSCC
	for remaining > 0 {
		k := 4 + rng.Intn(24)
		if k > remaining {
			k = remaining
		}
		remaining -= k
		rp := ringPlan{stage: rng.Intn(stages)}
		for i := 0; i < k; i++ {
			rp.ffs = append(rp.ffs, fmt.Sprintf("FF%d", ffIdx))
			ffIdx++
			if rng.Float64() < 0.65 {
				rp.hops = append(rp.hops, "") // direct shift-register arc
			} else {
				rp.hops = append(rp.hops, fmt.Sprintf("H%d", hopIdx))
				hopIdx++
				hopGates++
			}
		}
		rings = append(rings, rp)
	}
	for _, rp := range rings {
		for _, ff := range rp.ffs {
			b.addSignal(rp.stage, ff)
		}
	}

	// Plan pipeline flip-flops across stage boundaries.
	type pipePlan struct {
		boundary int // input from stage <= boundary, output at boundary+1
		name     string
	}
	var pipes []pipePlan
	for ffIdx < spec.DFFs {
		bd := 0
		if stages > 1 {
			bd = rng.Intn(stages - 1)
		}
		pp := pipePlan{boundary: bd, name: fmt.Sprintf("FF%d", ffIdx)}
		ffIdx++
		pipes = append(pipes, pp)
		b.addSignal(pp.boundary+1, pp.name)
	}

	// Combinational gate and inverter budgets per stage.
	combGates := spec.Gates - hopGates
	targetGateArea := spec.Area -
		netlist.AreaDFF*float64(spec.DFFs) -
		netlist.AreaInverter*float64(spec.Inverters) -
		netlist.AreaNand2*float64(hopGates) // hop gates are NAND2

	gatesPerStage := splitBudget(combGates, stages, rng)
	invPerStage := splitBudget(spec.Inverters, stages, rng)

	// Gates are created in local "blocks": each block draws a handful of
	// interface signals from the wider circuit, then its gates mostly read
	// within the block. Real designs are locally clustered (the property
	// Make_Group exploits); without blocks the synthetic circuits would
	// need far more cut nets than Table 10 reports.
	remainingArea := targetGateArea
	remainingGates := combGates
	gIdx, iIdx := 0, 0
	for t := 0; t < stages; t++ {
		blockLeft := 0
		nGates, nInvs := gatesPerStage[t], invPerStage[t]
		for nGates > 0 || nInvs > 0 {
			if blockLeft == 0 {
				blockLeft = 10 + rng.Intn(22)
				if err := b.startBlock(t, rng); err != nil {
					return nil, err
				}
			}
			blockLeft--
			// Interleave inverters proportionally with gates.
			makeInv := nInvs > 0 && (nGates == 0 || rng.Intn(nGates+nInvs) < nInvs)
			if makeInv {
				nInvs--
				ins, err := b.pickLocalFanins(t, 1, rng)
				if err != nil {
					return nil, err
				}
				name := fmt.Sprintf("I%d", iIdx)
				iIdx++
				if _, err := c.AddGate(name, netlist.Not, ins...); err != nil {
					return nil, err
				}
				b.invOf[name] = ins[0]
				b.addSignal(t, name)
				b.addToBlock(name)
				continue
			}
			nGates--
			area := pickArea(remainingArea, remainingGates)
			typ, fanin := pickGate(rng, area)
			ins, err := b.pickLocalFanins(t, fanin, rng)
			if err != nil {
				return nil, err
			}
			b.desaturate(t, ins, rng)
			name := fmt.Sprintf("N%d", gIdx)
			gIdx++
			if _, err := c.AddGate(name, typ, ins...); err != nil {
				return nil, err
			}
			b.addSignal(t, name)
			b.addToBlock(name)
			remainingArea -= netlist.GateArea(typ, fanin)
			remainingGates--
		}
	}

	// Close the rings: hop gate i = NAND(previous ring FF, filler); FF i
	// latches hop i. Fillers stay local — the ring's own signals, a nearby
	// recent signal of the same stage, or the previous ring's FF — so the
	// resulting SCCs are register-rich and locally clustered (real ISCAS89
	// loops are datapath-local; globally wired loops would force the
	// partitioner into far more SCC cuts than Table 10 reports).
	// Rings chain into groups of moderate size: real circuits hold many
	// medium strongly connected components (interacting FSMs and datapath
	// loops), not one giant one; within a group every cycle stays register-
	// rich, so the group's cut nets remain coverable by retiming.
	var prevRingFF string
	groupLeft := 0
	for _, rp := range rings {
		if groupLeft == 0 {
			groupLeft = 6 + rng.Intn(8)
			prevRingFF = ""
		}
		groupLeft--
		k := len(rp.ffs)
		for i := 0; i < k; i++ {
			prev := rp.ffs[(i+k-1)%k]
			if rp.hops[i] == "" {
				// Direct shift-register arc.
				if _, err := c.AddGate(rp.ffs[i], netlist.DFF, prev); err != nil {
					return nil, err
				}
				continue
			}
			var f string
			switch r := rng.Float64(); {
			case r < 0.6 && prevRingFF != "":
				f = prevRingFF // chain rings into one larger SCC
			case r < 0.68:
				f = b.recentSignal(rp.stage, rng) // nearby comb logic
			default:
				f = rp.ffs[rng.Intn(k)] // ring-internal
			}
			if f == "" || f == prev {
				f = rp.ffs[i%k]
				if f == prev {
					f = "PI0"
				}
			}
			if _, err := c.AddGate(rp.hops[i], netlist.Nand, prev, f); err != nil {
				return nil, err
			}
			if _, err := c.AddGate(rp.ffs[i], netlist.DFF, rp.hops[i]); err != nil {
				return nil, err
			}
		}
		prevRingFF = rp.ffs[0]
	}

	// Wire pipeline flip-flops.
	for _, pp := range pipes {
		ins, err := b.pickFanins(pp.boundary, 1)
		if err != nil {
			return nil, err
		}
		if _, err := c.AddGate(pp.name, netlist.DFF, ins...); err != nil {
			return nil, err
		}
	}

	// Primary outputs: every unread signal becomes observable (real
	// circuits have no dangling logic — leaving gates unobservable would
	// wreck the fault-coverage experiments), plus a few random top-stage
	// picks so there is always at least one PO per PI.
	seen := make(map[string]bool)
	for t := stages - 1; t >= 0; t-- {
		for _, s := range b.unread[t] {
			if !seen[s] {
				seen[s] = true
				c.AddOutput(s)
			}
		}
	}
	for len(seen) < spec.PIs {
		s := b.pools[stages-1][rng.Intn(len(b.pools[stages-1]))]
		if !seen[s] {
			seen[s] = true
			c.AddOutput(s)
		}
	}
	// Any primary input the blocks never consumed is at least routed to a
	// primary output so the published input count stays meaningful.
	for _, s := range b.mustUse {
		if !seen[s] {
			seen[s] = true
			c.AddOutput(s)
		}
	}

	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// builder tracks per-stage signal pools and unread signals for fanin
// selection. unreadPos maps a signal name to its index in its stage's
// unread list so removal is O(1).
type builder struct {
	c         *netlist.Circuit
	rng       *rand.Rand
	pools     [][]string
	unread    [][]string
	unreadPos map[string]int
	cumSize   []int
	// block is the current local block's signal pool (interface signals
	// plus the block's own gate outputs).
	block []string
	// mustUse queues signals that must appear as a fanin somewhere
	// (primary inputs); blockMust holds the current block's share, consumed
	// by the block's first gates.
	mustUse   []string
	blockMust []string
	// blockUnread tracks current-block outputs not yet read, so block
	// logic chains into cones instead of leaving dangling gates.
	blockUnread []string
	// invOf maps an inverter output to its input, so gates avoid reading a
	// signal together with its complement (which would synthesise constant
	// — untestable — logic).
	invOf map[string]string
	// bus is the current region bus (see startBlock); busLeft counts the
	// blocks remaining before a refresh and busStage is the stage the bus
	// was drawn at.
	bus      []string
	busLeft  int
	busStage int
}

// addToBlock registers a freshly created signal in the current block.
func (b *builder) addToBlock(name string) {
	b.block = append(b.block, name)
	b.blockUnread = append(b.blockUnread, name)
}

// desaturate replaces fanins that are complements of other fanins (x
// together with NOT(x) makes AND/NOR outputs constant). The replacement is
// drawn from the stage pools; if no clean signal is found the pair is left
// in place (rare, harmless).
func (b *builder) desaturate(stage int, ins []string, rng *rand.Rand) {
	conflict := func(a, x string) bool {
		return b.invOf[a] == x || b.invOf[x] == a
	}
	for i := 1; i < len(ins); i++ {
		bad := false
		for j := 0; j < i; j++ {
			if conflict(ins[i], ins[j]) {
				bad = true
				break
			}
		}
		if !bad {
			continue
		}
		for try := 0; try < 8; try++ {
			var cand string
			if len(b.block) > 0 && try < 5 {
				cand = b.block[rng.Intn(len(b.block))] // stay block-local
			} else {
				picked, err := b.pickFanins(stage, 1)
				if err != nil {
					return
				}
				cand = picked[0]
			}
			ok := cand != ""
			for j := range ins {
				if j != i && (ins[j] == cand || conflict(cand, ins[j])) {
					ok = false
					break
				}
			}
			if ok {
				ins[i] = cand
				break
			}
		}
	}
}

// recentSignal picks a signal from the tail window of the stage's pool
// (locally recent logic), falling back to any pool signal.
func (b *builder) recentSignal(stage int, rng *rand.Rand) string {
	pool := b.pools[stage]
	if len(pool) == 0 {
		for t := stage - 1; t >= 0; t-- {
			if len(b.pools[t]) > 0 {
				pool = b.pools[t]
				break
			}
		}
	}
	if len(pool) == 0 {
		return ""
	}
	window := 40
	if window > len(pool) {
		window = len(pool)
	}
	return pool[len(pool)-1-rng.Intn(window)]
}

// startBlock begins a new local block at the given stage. Its interface
// mixes the stage's current "region bus" — a slowly refreshed set of
// signals shared by neighbouring blocks, the way real designs share local
// control and data lines — with pending mandatory signals (unused PIs) and
// the odd fresh pick. Shared interfaces are what lets Assign_CBIT merge
// neighbouring blocks without blowing the input budget.
func (b *builder) startBlock(stage int, rng *rand.Rand) error {
	b.block = b.block[:0]
	b.blockMust = b.blockMust[:0]
	b.blockUnread = b.blockUnread[:0]
	for len(b.mustUse) > 0 && len(b.block) < 2 {
		s := b.mustUse[len(b.mustUse)-1]
		b.mustUse = b.mustUse[:len(b.mustUse)-1]
		b.block = append(b.block, s)
		b.blockMust = append(b.blockMust, s)
	}
	// Refresh the region bus every ~10 blocks (and whenever the stage
	// changes, since bus lines must be readable at the current stage).
	if b.busLeft == 0 || b.busStage != stage || len(b.bus) == 0 {
		b.busLeft = 8 + rng.Intn(6)
		b.busStage = stage
		n := 6 + rng.Intn(4)
		bus, err := b.pickFanins(stage, n)
		if err != nil {
			bus, err = b.pickFanins(stage, 1)
			if err != nil {
				return err
			}
		}
		b.bus = bus
	}
	b.busLeft--
	// Two or three bus lines plus at most one fresh signal.
	for i := 0; i < 2+rng.Intn(2) && i < len(b.bus); i++ {
		b.block = append(b.block, b.bus[rng.Intn(len(b.bus))])
	}
	if rng.Intn(2) == 0 {
		if ins, err := b.pickFanins(stage, 1); err == nil {
			b.block = append(b.block, ins...)
		}
	}
	return nil
}

// pickLocalFanins picks n distinct fanins, preferring the current block.
func (b *builder) pickLocalFanins(stage, n int, rng *rand.Rand) ([]string, error) {
	out := make([]string, 0, n)
	used := make(map[string]bool, n)
	for len(out) < n {
		if len(b.blockMust) > 0 {
			cand := b.blockMust[len(b.blockMust)-1]
			if !used[cand] {
				b.blockMust = b.blockMust[:len(b.blockMust)-1]
				used[cand] = true
				out = append(out, cand)
				continue
			}
		}
		if len(b.blockUnread) > 0 && rng.Float64() < 0.25 {
			// Chain onto an unread block output so cones stay connected.
			i := rng.Intn(len(b.blockUnread))
			cand := b.blockUnread[i]
			b.blockUnread[i] = b.blockUnread[len(b.blockUnread)-1]
			b.blockUnread = b.blockUnread[:len(b.blockUnread)-1]
			if !used[cand] {
				used[cand] = true
				out = append(out, cand)
				continue
			}
		}
		if len(b.block) >= 2 && rng.Float64() < 0.85 {
			cand := b.block[rng.Intn(len(b.block))]
			if !used[cand] {
				used[cand] = true
				out = append(out, cand)
				continue
			}
		}
		rest, err := b.pickFanins(stage, 1)
		if err != nil {
			return nil, err
		}
		if used[rest[0]] {
			// Fall back to any unused block signal, then any pool signal.
			found := ""
			for _, s := range b.block {
				if !used[s] {
					found = s
					break
				}
			}
			if found == "" {
				for t := stage; t >= 0 && found == ""; t-- {
					for _, s := range b.pools[t] {
						if !used[s] {
							found = s
							break
						}
					}
				}
			}
			if found == "" {
				// Degenerate stage with fewer distinct signals than pins:
				// duplicate a fanin (AND(a, a) is legal, if pointless).
				found = out[0]
				out = append(out, found)
				continue
			}
			used[found] = true
			out = append(out, found)
			continue
		}
		used[rest[0]] = true
		out = append(out, rest[0])
	}
	return out, nil
}

func (b *builder) addSignal(stage int, name string) {
	if b.unreadPos == nil {
		b.unreadPos = make(map[string]int)
	}
	b.pools[stage] = append(b.pools[stage], name)
	b.unreadPos[name] = len(b.unread[stage])
	b.unread[stage] = append(b.unread[stage], name)
}

func (b *builder) markRead(stage int, name string) {
	p, ok := b.unreadPos[name]
	if !ok {
		return
	}
	u := b.unread[stage]
	last := u[len(u)-1]
	u[p] = last
	b.unreadPos[last] = p
	b.unread[stage] = u[:len(u)-1]
	delete(b.unreadPos, name)
}

// pickFanins selects n distinct signals readable at the given stage,
// preferring unread signals to keep fanout dense.
func (b *builder) pickFanins(stage int, n int) ([]string, error) {
	total := 0
	for t := 0; t <= stage; t++ {
		total += len(b.pools[t])
	}
	if total == 0 {
		return nil, fmt.Errorf("bench89: no signals available at stage %d", stage)
	}
	out := make([]string, 0, n)
	used := make(map[string]bool, n)
	for len(out) < n {
		var cand string
		var candStage int
		if b.rng.Float64() < 0.6 {
			// Prefer an unread signal at the highest populated stage <= stage.
			for t := stage; t >= 0; t-- {
				if len(b.unread[t]) > 0 {
					cand = b.unread[t][b.rng.Intn(len(b.unread[t]))]
					candStage = t
					break
				}
			}
		}
		if cand == "" {
			// Uniform over all pools <= stage.
			r := b.rng.Intn(total)
			for t := 0; t <= stage; t++ {
				if r < len(b.pools[t]) {
					cand = b.pools[t][r]
					candStage = t
					break
				}
				r -= len(b.pools[t])
			}
		}
		if used[cand] {
			// Distinctness retry: fall back to scanning for any unused.
			cand = ""
			for t := stage; t >= 0 && cand == ""; t-- {
				for _, s := range b.pools[t] {
					if !used[s] {
						cand = s
						candStage = t
						break
					}
				}
			}
			if cand == "" {
				// Fewer distinct signals than pins: duplicate.
				cand = out[0]
				out = append(out, cand)
				continue
			}
		}
		used[cand] = true
		out = append(out, cand)
		b.markRead(candStage, cand)
	}
	return out, nil
}

// splitBudget spreads n items over k buckets with mild randomness.
func splitBudget(n, k int, rng *rand.Rand) []int {
	out := make([]int, k)
	base := n / k
	for i := range out {
		out[i] = base
	}
	for i := 0; i < n-base*k; i++ {
		out[rng.Intn(k)]++
	}
	// Shuffle +/- 10% between adjacent buckets for texture.
	for i := 0; i+1 < k; i++ {
		d := out[i] / 10
		if d > 0 {
			m := rng.Intn(2*d+1) - d
			if out[i]-m >= 0 && out[i+1]+m >= 0 {
				out[i] -= m
				out[i+1] += m
			}
		}
	}
	return out
}

// pickArea chooses the next gate's target area (2..5 units) to track the
// remaining budget.
func pickArea(remaining float64, gatesLeft int) float64 {
	if gatesLeft <= 0 {
		return 2
	}
	target := remaining / float64(gatesLeft)
	switch {
	case target >= 4.5:
		return 5
	case target >= 3.5:
		return 4
	case target >= 2.5:
		return 3
	default:
		return 2
	}
}

// pickGate maps a target area to a concrete gate type and fanin count.
func pickGate(rng *rand.Rand, area float64) (netlist.GateType, int) {
	switch area {
	case 5:
		// AND4/OR4 (3+2 extra? no: base 3 + 2 extra = 5 with fanin 4).
		if rng.Intn(2) == 0 {
			return netlist.And, 4
		}
		return netlist.Or, 4
	case 4:
		switch rng.Intn(3) {
		case 0:
			return netlist.Xor, 2
		case 1:
			return netlist.And, 3
		default:
			return netlist.Or, 3
		}
	case 3:
		switch rng.Intn(4) {
		case 0:
			return netlist.And, 2
		case 1:
			return netlist.Or, 2
		case 2:
			return netlist.Nand, 3
		default:
			return netlist.Nor, 3
		}
	default:
		if rng.Intn(2) == 0 {
			return netlist.Nand, 2
		}
		return netlist.Nor, 2
	}
}
