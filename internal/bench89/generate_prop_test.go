package bench89

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestGenerateRandomSpecs: the generator must produce a valid,
// comb-cycle-free circuit with exact counts for arbitrary small specs, not
// just the Table 9 ones.
func TestGenerateRandomSpecs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dffs := rng.Intn(30)
		onSCC := 0
		if dffs > 0 {
			onSCC = rng.Intn(dffs + 1)
		}
		gates := onSCC + 20 + rng.Intn(200)
		invs := rng.Intn(60)
		// Area must be achievable: between all-NAND2 and all-AND4-ish.
		minArea := float64(dffs*10+invs) + 2*float64(gates)
		maxArea := float64(dffs*10+invs) + 5*float64(gates)
		area := minArea + rng.Float64()*(maxArea-minArea)*0.5
		sp := Spec{
			Name: "rand", PIs: 2 + rng.Intn(20), DFFs: dffs, Gates: gates,
			Inverters: invs, Area: area, DFFsOnSCC: onSCC,
		}
		c, err := Generate(sp, seed)
		if err != nil {
			return false
		}
		st := c.Stats()
		if st.PIs != sp.PIs || st.DFFs != sp.DFFs || st.Gates != sp.Gates || st.Inverters != sp.Inverters {
			return false
		}
		g, err := graph.FromCircuit(c)
		if err != nil {
			return false
		}
		info := g.SCC()
		for comp := 0; comp < info.NumComponents(); comp++ {
			if info.Nontrivial(comp) && info.RegCount[comp] == 0 {
				return false // combinational cycle
			}
		}
		return g.RegsOnSCC(info) >= sp.DFFsOnSCC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCompileRandomGenerated: the whole Merced pipeline must succeed on
// arbitrary generated circuits (end-to-end failure injection).
func TestCompileRandomGenerated(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dffs := 2 + rng.Intn(20)
		onSCC := rng.Intn(dffs + 1)
		gates := onSCC + 30 + rng.Intn(120)
		sp := Spec{
			Name: "rand", PIs: 3 + rng.Intn(25), DFFs: dffs, Gates: gates,
			Inverters: rng.Intn(40), DFFsOnSCC: onSCC,
		}
		sp.Area = float64(sp.DFFs*10+sp.Inverters) + 2.6*float64(sp.Gates)
		c, err := Generate(sp, seed)
		if err != nil {
			return false
		}
		r, err := core.Compile(context.Background(), c, core.DefaultOptions(8, seed))
		if err != nil {
			return false
		}
		if err := r.Partition.Validate(); err != nil {
			return false
		}
		// Invariant: solver covered+demoted == cut nets.
		if r.Retiming != nil &&
			len(r.Retiming.Covered)+len(r.Retiming.Demoted) != r.Areas.CutNets {
			return false
		}
		// Invariant: retimed CBIT area never exceeds the non-retimed one.
		return r.Areas.CBITAreaRetimed <= r.Areas.CBITAreaNonRetimed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
