package bench89

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/netlist"
)

func TestS27Exact(t *testing.T) {
	c, err := S27()
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.PIs != 4 || st.DFFs != 3 || st.Gates != 8 || st.Inverters != 2 {
		t.Fatalf("s27 stats = %+v", st)
	}
	if len(c.Outputs) != 1 || c.Outputs[0] != "G17" {
		t.Fatalf("s27 outputs = %v", c.Outputs)
	}
}

func TestSpecsComplete(t *testing.T) {
	if len(Specs) != 17 {
		t.Fatalf("specs = %d, want 17 (paper Table 9)", len(Specs))
	}
	names := map[string]bool{}
	for _, s := range Specs {
		if names[s.Name] {
			t.Fatalf("duplicate spec %s", s.Name)
		}
		names[s.Name] = true
		if s.DFFsOnSCC > s.DFFs {
			t.Fatalf("%s: DFFsOnSCC > DFFs", s.Name)
		}
		if s.Area <= 0 || s.PIs <= 0 || s.Gates <= 0 {
			t.Fatalf("%s: degenerate spec %+v", s.Name, s)
		}
	}
}

func TestSpecByName(t *testing.T) {
	if _, ok := SpecByName("s641"); !ok {
		t.Fatal("s641 missing")
	}
	if _, ok := SpecByName("bogus"); ok {
		t.Fatal("bogus found")
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("s000"); err == nil {
		t.Fatal("unknown circuit loaded")
	}
}

func TestGenerateMatchesSpec(t *testing.T) {
	// Every generated circuit must reproduce Table 9's counts exactly and
	// its estimated area within 2%.
	for _, sp := range Specs {
		if testing.Short() && sp.Area > 10000 {
			continue
		}
		c, err := Load(sp.Name)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		st := c.Stats()
		if st.PIs != sp.PIs {
			t.Errorf("%s: PIs %d, want %d", sp.Name, st.PIs, sp.PIs)
		}
		if st.DFFs != sp.DFFs {
			t.Errorf("%s: DFFs %d, want %d", sp.Name, st.DFFs, sp.DFFs)
		}
		if st.Gates != sp.Gates {
			t.Errorf("%s: gates %d, want %d", sp.Name, st.Gates, sp.Gates)
		}
		if st.Inverters != sp.Inverters {
			t.Errorf("%s: inverters %d, want %d", sp.Name, st.Inverters, sp.Inverters)
		}
		if rel := math.Abs(st.Area-sp.Area) / sp.Area; rel > 0.02 {
			t.Errorf("%s: area %.0f vs paper %.0f (%.1f%% off)", sp.Name, st.Area, sp.Area, 100*rel)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Load("s641")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("s641")
	if err != nil {
		t.Fatal(err)
	}
	if a.BenchString() != b.BenchString() {
		t.Fatal("Load is not deterministic")
	}
	sp, _ := SpecByName("s641")
	c2, err := Generate(sp, 999)
	if err != nil {
		t.Fatal(err)
	}
	if a.BenchString() == c2.BenchString() {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestGeneratedSCCStructure(t *testing.T) {
	// The generated feedback structure must place close to the published
	// number of flip-flops on strongly connected components.
	for _, name := range []string{"s641", "s1423", "s838.1"} {
		sp, _ := SpecByName(name)
		c, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.FromCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		got := g.RegsOnSCC(g.SCC())
		if got < sp.DFFsOnSCC {
			t.Errorf("%s: %d DFFs on SCC, want >= %d (ring plan)", name, got, sp.DFFsOnSCC)
		}
		// Pipeline flip-flops mostly stay off the SCCs; a ring hop reading
		// nearby logic can pull the odd one onto a loop, so allow a 2%
		// margin over the published figure.
		margin := sp.DFFsOnSCC/50 + 1
		if got > sp.DFFsOnSCC+margin {
			t.Errorf("%s: %d DFFs on SCC, want <= %d", name, got, sp.DFFsOnSCC+margin)
		}
	}
}

func TestGeneratedCircuitsAreValidAndAcyclic(t *testing.T) {
	// No combinational cycles: every cycle must pass through a DFF. The
	// graph SCC check: any nontrivial SCC must contain at least one
	// register node.
	for _, name := range []string{"s510", "s713", "s1423"} {
		c, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := graph.FromCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		info := g.SCC()
		for comp := 0; comp < info.NumComponents(); comp++ {
			if info.Nontrivial(comp) && info.RegCount[comp] == 0 {
				t.Fatalf("%s: combinational cycle (SCC with no registers)", name)
			}
		}
	}
}

func TestEveryPIUsed(t *testing.T) {
	for _, name := range []string{"s641", "s1423", "s5378"} {
		c, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		read := map[string]bool{}
		for _, g := range c.Gates {
			for _, f := range g.Fanin {
				read[f] = true
			}
		}
		for _, o := range c.Outputs {
			read[o] = true
		}
		for _, in := range c.Inputs {
			if !read[in] {
				t.Errorf("%s: primary input %s dangling", name, in)
			}
		}
	}
}

func TestSmallSpecs(t *testing.T) {
	small := SmallSpecs(1000)
	for _, s := range small {
		if s.Area > 1000 {
			t.Fatalf("SmallSpecs returned %s with area %.0f", s.Name, s.Area)
		}
	}
	if len(small) == 0 {
		t.Fatal("no small specs")
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c, err := Load("s510")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := netlist.ParseBenchString("s510", c.BenchString())
	if err != nil {
		t.Fatalf("generated netlist does not reparse: %v", err)
	}
	if c2.Stats() != c.Stats() {
		t.Fatalf("roundtrip stats differ: %+v vs %+v", c2.Stats(), c.Stats())
	}
}

func TestSeedForStable(t *testing.T) {
	if seedFor("s641") != seedFor("s641") {
		t.Fatal("seedFor unstable")
	}
	if seedFor("s641") == seedFor("s713") {
		t.Fatal("seedFor collision")
	}
}
