// Package anneal is the simulated-annealing input-constraint partitioner the
// authors used before the flow-based approach (Liou/Lin/Cheng/Liu, CICC'94
// — the paper's reference [4]). It serves as the baseline Merced's
// multicommodity-flow partitioner is compared against: same cost model
// (cut nets under the iota <= l_k constraint), different search strategy.
package anneal

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Options configures the annealer.
type Options struct {
	// LK is the input-size constraint.
	LK int
	// NumClusters is the partition arity m; 0 derives it from the cell
	// count and LK.
	NumClusters int
	// Seed drives the Markov chain.
	Seed int64
	// InitialTemp, Cooling and MovesPerTemp shape the schedule; zero
	// values get sensible defaults (T0=10, 0.95, 8*|cells|).
	InitialTemp  float64
	Cooling      float64
	MovesPerTemp int
	// MinTemp stops the schedule (default 0.05).
	MinTemp float64
	// Penalty weights the input-constraint violation term (default 5).
	Penalty float64
}

// Result is an annealed partition.
type Result struct {
	// Assign[v] is the cluster of cell v (-1 for non-cells).
	Assign []int
	// CutNets counts nets whose source and some cell sink differ in
	// cluster.
	CutNets int
	// MaxInputs is the largest iota over clusters.
	MaxInputs int
	// Violations sums max(0, iota-LK) over clusters.
	Violations int
	// Moves and Accepted report the chain statistics.
	Moves, Accepted int
	// Cost is the final energy.
	Cost float64
}

// Partition anneals the cells of g into clusters under the input
// constraint. It is deliberately simple and quadratic-ish: the baseline
// exists to compare solution quality, not speed, with partition.MakeGroup.
func Partition(g *graph.G, opt Options) (*Result, error) {
	if opt.LK < 1 {
		return nil, errors.New("anneal: LK must be >= 1")
	}
	cells := g.CellIDs()
	if len(cells) == 0 {
		return &Result{Assign: fill(g.NumNodes(), -1)}, nil
	}
	m := opt.NumClusters
	if m <= 0 {
		// Rough sizing: aim for clusters of ~2*LK cells.
		m = len(cells)/(2*opt.LK) + 1
	}
	if m < 2 {
		m = 2
	}
	t0 := opt.InitialTemp
	if t0 <= 0 {
		t0 = 10
	}
	cool := opt.Cooling
	if cool <= 0 || cool >= 1 {
		cool = 0.95
	}
	moves := opt.MovesPerTemp
	if moves <= 0 {
		moves = 8 * len(cells)
	}
	minT := opt.MinTemp
	if minT <= 0 {
		minT = 0.05
	}
	penalty := opt.Penalty
	if penalty <= 0 {
		penalty = 5
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	st := newState(g, m, opt.LK)
	for _, v := range cells {
		st.place(v, rng.Intn(m))
	}

	res := &Result{Assign: append([]int(nil), st.assign...)}
	cur := st.cost(penalty)
	best := cur
	bestAssign := append([]int(nil), st.assign...)

	for T := t0; T > minT; T *= cool {
		for i := 0; i < moves; i++ {
			v := cells[rng.Intn(len(cells))]
			from := st.assign[v]
			to := rng.Intn(m)
			if to == from {
				continue
			}
			res.Moves++
			st.move(v, to)
			next := st.cost(penalty)
			if next <= cur || rng.Float64() < math.Exp((cur-next)/T) {
				cur = next
				res.Accepted++
				if cur < best {
					best = cur
					copy(bestAssign, st.assign)
				}
			} else {
				st.move(v, from) // reject
			}
		}
	}

	st.load(bestAssign)
	res.Assign = bestAssign
	res.Cost = best
	res.CutNets = st.cutNets
	res.MaxInputs, res.Violations = st.inputStats()
	return res, nil
}

func fill(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// state maintains incremental cut and input counts. Each net remembers the
// clusters it currently contributes an input to (contrib), so refreshes
// stay correct regardless of how the assignment changed in between.
type state struct {
	g      *graph.G
	lk     int
	m      int
	assign []int
	// contrib[e] lists clusters net e currently counts toward iota of.
	contrib [][]int
	// cut[e] caches whether net e currently crosses clusters.
	cut     []bool
	cutNets int
	// inputs[c] is iota(c): nets with a cell sink in c and source outside.
	inputs []int
}

func newState(g *graph.G, m, lk int) *state {
	return &state{
		g:       g,
		lk:      lk,
		m:       m,
		assign:  fill(g.NumNodes(), -1),
		contrib: make([][]int, g.NumNets()),
		cut:     make([]bool, g.NumNets()),
		inputs:  make([]int, m),
	}
}

// place sets the initial cluster of v (identical to move; kept for intent).
func (st *state) place(v, c int) { st.move(v, c) }

// move relocates v and refreshes all incident nets.
func (st *state) move(v, c int) {
	st.assign[v] = c
	for _, e := range st.g.In[v] {
		st.refreshNet(e)
	}
	for _, e := range st.g.Out[v] {
		st.refreshNet(e)
	}
}

// load replaces the whole assignment.
func (st *state) load(assign []int) {
	copy(st.assign, assign)
	for e := range st.contrib {
		st.refreshNet(e)
	}
}

// refreshNet recomputes a net's cut flag and input contributions.
// O(|sinks|); the annealer's move neighbourhood touches only incident nets.
func (st *state) refreshNet(e int) {
	g := st.g
	net := &g.Nets[e]

	// Remove the previously recorded contributions.
	for _, c := range st.contrib[e] {
		st.inputs[c]--
	}
	st.contrib[e] = st.contrib[e][:0]
	if st.cut[e] {
		st.cutNets--
		st.cut[e] = false
	}

	srcIsCell := g.IsCell(net.Source)
	srcIsPI := g.Nodes[net.Source].Kind == graph.KindPI
	srcCluster := -1
	if srcIsCell {
		srcCluster = st.assign[net.Source]
	}
	seen := map[int]bool{}
	for _, s := range net.Sinks {
		if !g.IsCell(s) {
			continue
		}
		c := st.assign[s]
		if c < 0 || seen[c] { // unplaced sinks during initial seeding
			continue
		}
		seen[c] = true
		if srcIsCell && c != srcCluster {
			st.cut[e] = true
		}
		if (srcIsCell && c != srcCluster) || srcIsPI {
			st.contrib[e] = append(st.contrib[e], c)
			st.inputs[c]++
		}
	}
	if st.cut[e] {
		st.cutNets++
	}
}

func (st *state) inputStats() (maxIn, violations int) {
	for _, in := range st.inputs {
		if in > maxIn {
			maxIn = in
		}
		if in > st.lk {
			violations += in - st.lk
		}
	}
	return maxIn, violations
}

func (st *state) cost(penalty float64) float64 {
	_, viol := st.inputStats()
	return float64(st.cutNets) + penalty*float64(viol)
}
