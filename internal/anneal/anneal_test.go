package anneal

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/netlist"
)

const s27 = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func s27Graph(t *testing.T) *graph.G {
	t.Helper()
	c, err := netlist.ParseBenchString("s27", s27)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionS27(t *testing.T) {
	g := s27Graph(t)
	r, err := Partition(g, Options{LK: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.CellIDs() {
		if r.Assign[v] < 0 {
			t.Fatalf("cell %d unassigned", v)
		}
	}
	if r.Moves == 0 || r.Accepted == 0 {
		t.Fatalf("chain did not run: %+v", r)
	}
	// s27 at lk=3 is satisfiable (MakeGroup finds it); SA should end with
	// no or few violations.
	if r.Violations > 2 {
		t.Fatalf("violations = %d", r.Violations)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := s27Graph(t)
	a, _ := Partition(g, Options{LK: 3, Seed: 42})
	b, _ := Partition(g, Options{LK: 3, Seed: 42})
	if a.Cost != b.Cost || a.CutNets != b.CutNets {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestPartitionValidation(t *testing.T) {
	g := s27Graph(t)
	if _, err := Partition(g, Options{LK: 0}); err == nil {
		t.Fatal("LK=0 accepted")
	}
}

func TestIncrementalCountsConsistent(t *testing.T) {
	// Property: after an arbitrary sequence of moves, the incremental cut
	// and input counters must equal a from-scratch recount.
	g := s27Graph(t)
	cells := g.CellIDs()
	f := func(seed int64) bool {
		st := newState(g, 4, 3)
		rng := newRng(seed)
		for _, v := range cells {
			st.place(v, rng.Intn(4))
		}
		for i := 0; i < 50; i++ {
			st.move(cells[rng.Intn(len(cells))], rng.Intn(4))
		}
		// Recount from scratch.
		wantCut := 0
		wantInputs := make([]int, 4)
		for e := range g.Nets {
			net := &g.Nets[e]
			srcIsCell := g.IsCell(net.Source)
			srcIsPI := g.Nodes[net.Source].Kind == graph.KindPI
			seen := map[int]bool{}
			cut := false
			for _, s := range net.Sinks {
				if !g.IsCell(s) {
					continue
				}
				c := st.assign[s]
				if seen[c] {
					continue
				}
				seen[c] = true
				if srcIsCell && c != st.assign[net.Source] {
					cut = true
					wantInputs[c]++
				} else if srcIsPI {
					wantInputs[c]++
				}
			}
			if cut {
				wantCut++
			}
		}
		if st.cutNets != wantCut {
			return false
		}
		for c := range wantInputs {
			if st.inputs[c] != wantInputs[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	c := netlist.New("empty")
	g, err := graph.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Partition(g, Options{LK: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.CutNets != 0 {
		t.Fatal("cuts on empty graph")
	}
}

// newRng is a tiny helper so the property test controls its own stream.
func newRng(seed int64) *rngT { return &rngT{s: uint64(seed)*2862933555777941757 + 3037000493} }

type rngT struct{ s uint64 }

func (r *rngT) Intn(n int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(n))
}
