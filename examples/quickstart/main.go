// Quickstart: parse a .bench netlist, compile it with Merced for pipelined
// pseudo-exhaustive testing, and print the partition and area report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netlist"
)

// A small pipeline with a feedback loop: two stages of logic around two
// flip-flops, one of which sits on a cycle.
const design = `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(out)
n1 = NAND(a, b)
n2 = NOR(c, d)
n3 = XOR(n1, n2)
r1 = DFF(n3)
n4 = AND(r1, fb)
n5 = OR(n4, n2)
r2 = DFF(n5)
fb = NOT(r2)
out = NAND(r2, n1)
`

func main() {
	// 1. Parse the netlist.
	c, err := netlist.ParseBenchString("quickstart", design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", c)

	// 2. Compile for PPET: input constraint l_k=3, the paper's beta=50,
	//    a fixed seed for reproducible flow congestion.
	opt := core.DefaultOptions(3, 1)
	r, err := core.Compile(context.Background(), c, opt)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the partition.
	fmt.Printf("partition: %d clusters (max %d inputs each), %d cut nets\n",
		len(r.Partition.Clusters), r.Partition.MaxInputs(), r.Areas.CutNets)
	for _, cl := range r.Partition.Clusters {
		names := make([]string, 0, len(cl.Nodes))
		for _, v := range cl.Nodes {
			names = append(names, r.Graph.Nodes[v].Name)
		}
		fmt.Printf("  cluster %d (%d inputs): %v\n", cl.ID, cl.Inputs(), names)
	}

	// 4. The area verdict: how much test hardware does retiming save?
	fmt.Printf("CBIT area with retiming: %.0f units (%.1f%% of total)\n",
		r.Areas.CBITAreaRetimed, r.Areas.RatioRetimed)
	fmt.Printf("CBIT area without:       %.0f units (%.1f%% of total)\n",
		r.Areas.CBITAreaNonRetimed, r.Areas.RatioNonRetimed)
	fmt.Printf("retiming saves %.1f percentage points of test hardware\n", r.Areas.Saving())

	// 5. Which cut nets did retiming cover with functional registers?
	if r.Retiming != nil {
		for _, e := range r.Retiming.Covered {
			fmt.Printf("  covered: register repositioned onto net %s\n", r.Graph.Nets[e].Name)
		}
		for _, e := range r.Retiming.Demoted {
			fmt.Printf("  demoted: net %s needs a multiplexed A_CELL (cycle register limit)\n", r.Graph.Nets[e].Name)
		}
	}
}
