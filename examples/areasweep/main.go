// areasweep demonstrates the testing-time vs. test-hardware trade-off the
// paper's Figure 4 and Table 12 frame: sweeping the input constraint l_k
// over the standard CBIT sizes changes both the self-test session length
// (2^l_k cycles) and the cut-net count, and sweeping beta (Eq. 6) shows the
// retiming budget trade-off on the strongly connected components.
//
//	go run ./examples/areasweep
package main

import (
	"fmt"
	"log"

	"repro/internal/bench89"
	"repro/internal/cbit"
	"repro/internal/core"
)

func main() {
	const name = "s641"
	c, err := bench89.Load(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("l_k sweep on %s (beta=50):\n", name)
	fmt.Println("  l_k  testing_time  cuts  on_scc  covered  A_CBIT%/ret  A_CBIT%/noret  saving")
	for _, lk := range cbit.StandardWidths {
		r, err := core.Compile(c, core.DefaultOptions(lk, 1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d  %12.0f  %4d  %6d  %7d  %11.1f  %13.1f  %6.1f\n",
			lk, cbit.TestingTime(lk), r.Areas.CutNets, r.Areas.CutNetsOnSCC,
			r.Areas.CoveredCuts, r.Areas.RatioRetimed, r.Areas.RatioNonRetimed, r.Areas.Saving())
	}

	// Beta trade-off: a small beta restricts cuts inside SCCs (cheaper
	// retimed hardware per cut, but the partitioner may need more or
	// wider clusters -> longer testing time). The paper leaves beta to the
	// designer and uses 50 for the unrestricted experiments.
	fmt.Printf("\nbeta sweep on %s (l_k=16):\n", name)
	fmt.Println("  beta  cuts  on_scc  max_inputs  covered  excess")
	for _, beta := range []int{1, 2, 5, 50} {
		opt := core.DefaultOptions(16, 1)
		opt.Beta = beta
		r, err := core.Compile(c, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d  %4d  %6d  %10d  %7d  %6d\n",
			beta, r.Areas.CutNets, r.Areas.CutNetsOnSCC, r.Partition.MaxInputs(),
			r.Areas.CoveredCuts, r.Areas.ExcessCuts)
	}
}
