// areasweep demonstrates the testing-time vs. test-hardware trade-off the
// paper's Figure 4 and Table 12 frame: sweeping the input constraint l_k
// over the standard CBIT sizes changes both the self-test session length
// (2^l_k cycles) and the cut-net count, and sweeping beta (Eq. 6) shows the
// retiming budget trade-off on the strongly connected components.
//
// Both sweeps run through internal/sweep, the batch engine behind
// `merced -sweep`: every (circuit, l_k, beta, seed) job is independent, so
// the engine spreads them across a worker pool and still returns results
// in job order.
//
//	go run ./examples/areasweep
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cbit"
	"repro/internal/sweep"
)

func main() {
	const name = "s641"
	ctx := context.Background()

	// l_k sweep: one job per standard CBIT width, compiled in parallel.
	jobs := sweep.Matrix([]string{name}, cbit.StandardWidths, []int{50}, []int64{1}, nil)
	rep, err := sweep.Run(ctx, jobs, sweep.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("l_k sweep on %s (beta=50, %d workers, %v wall):\n",
		name, rep.Stats.Workers, rep.Stats.Wall.Round(time.Millisecond))
	fmt.Println("  l_k  testing_time  cuts  on_scc  covered  A_CBIT%/ret  A_CBIT%/noret  saving")
	for _, jr := range rep.Jobs {
		if jr.Err != nil {
			log.Fatal(jr.Err)
		}
		fmt.Printf("  %3d  %12.0f  %4d  %6d  %7d  %11.1f  %13.1f  %6.1f\n",
			jr.Job.LK, cbit.TestingTime(jr.Job.LK), jr.Areas.CutNets, jr.Areas.CutNetsOnSCC,
			jr.Areas.CoveredCuts, jr.Areas.RatioRetimed, jr.Areas.RatioNonRetimed, jr.Areas.Saving())
	}

	// Beta trade-off: a small beta restricts cuts inside SCCs (cheaper
	// retimed hardware per cut, but the partitioner may need more or
	// wider clusters -> longer testing time). The paper leaves beta to the
	// designer and uses 50 for the unrestricted experiments.
	jobs = sweep.Matrix([]string{name}, []int{16}, []int{1, 2, 5, 50}, []int64{1}, nil)
	rep, err = sweep.Run(ctx, jobs, sweep.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbeta sweep on %s (l_k=16):\n", name)
	fmt.Println("  beta  cuts  on_scc  max_inputs  covered  excess")
	for _, jr := range rep.Jobs {
		if jr.Err != nil {
			log.Fatal(jr.Err)
		}
		fmt.Printf("  %4d  %4d  %6d  %10d  %7d  %6d\n",
			jr.Job.Beta, jr.Areas.CutNets, jr.Areas.CutNetsOnSCC, jr.MaxInputs,
			jr.Areas.CoveredCuts, jr.Areas.ExcessCuts)
	}
}
