// faultcoverage validates PPET's "high fault coverage" claim end to end:
// partition a benchmark circuit, run the CBIT-driven self-test on every
// segment, and fault-simulate the full single-stuck-at list per segment,
// exactly as the succeeding PSA CBITs would observe it.
//
//	go run ./examples/faultcoverage
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ppet"
	"repro/internal/sim"
)

func main() {
	const name = "s510"
	c, err := bench89.Load(name)
	if err != nil {
		log.Fatal(err)
	}
	r, err := core.Compile(context.Background(), c, core.DefaultOptions(8, 1))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ppet.BuildPlan(r.Partition)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at l_k=8: %d segments, self-test session 2^%d = %.0f cycles\n",
		name, len(plan.Segments), plan.MaxWidth, plan.TotalTime)

	// Golden signatures: the values the scan chain would read out after a
	// fault-free self-test session.
	sigs, err := ppet.SelfTest(c, r.Partition, ppet.SelfTestOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("golden signatures:")
	for i, s := range sigs {
		fmt.Printf("  segment %2d: %04X after %d cycles\n", s.Cluster, s.Value, s.Cycles)
		_ = i
	}

	// A fault changes its segment's signature.
	someSignal := r.Graph.Nets[r.Partition.Clusters[0].Nodes[0]].Name
	faulty, err := ppet.SelfTest(c, r.Partition, ppet.SelfTestOptions{
		Seed:  1,
		Fault: &sim.Fault{Signal: someSignal, Stuck1: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := range sigs {
		if sigs[i].Value != faulty[i].Value {
			fmt.Printf("injected %s/SA1: segment %d signature %04X -> %04X (detected)\n",
				someSignal, sigs[i].Cluster, sigs[i].Value, faulty[i].Value)
		}
	}

	// Full per-segment stuck-at campaign.
	fmt.Println("\nper-segment single-stuck-at coverage:")
	totalF, totalD := 0, 0
	for _, cl := range r.Partition.Clusters {
		inputs := make([]int, 0, len(cl.InputNets))
		for e := range cl.InputNets {
			inputs = append(inputs, e)
		}
		sort.Ints(inputs)
		sg, err := sim.BuildSegment(c, r.Graph, cl.Nodes, inputs)
		if err != nil {
			log.Fatal(err)
		}
		cov, err := fault.Simulate(sg, fault.List(sg), fault.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		totalF += cov.Total
		totalD += cov.Detected
		fmt.Printf("  segment %2d: %3d cells, %2d inputs -> %4d/%4d faults (%.1f%%)\n",
			cl.ID, len(cl.Nodes), cl.Inputs(), cov.Detected, cov.Total, 100*cov.Ratio())
	}
	fmt.Printf("overall: %d/%d = %.2f%% single-stuck-at coverage\n",
		totalD, totalF, 100*float64(totalD)/float64(totalF))
}
