// s27walkthrough reproduces the paper's running example on ISCAS89 s27:
// Figure 2 (the multi-pin graph), Figure 5 (Saturate_Network congestion),
// Figure 6 (Make_Group clusters at l_k=3) and Figure 7 (the merged
// partition after Assign_CBIT).
//
//	go run ./examples/s27walkthrough
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/bench89"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	c, err := bench89.S27()
	if err != nil {
		log.Fatal(err)
	}

	// Figure 2: the multi-pin graph representation.
	g, err := graph.FromCircuit(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Figure 2: multi-pin graph of s27 ==")
	fmt.Printf("%d nodes (%d cells), %d nets\n", g.NumNodes(), len(g.CellIDs()), g.NumNets())
	for _, net := range g.Nets {
		fmt.Println("  ", g.NetString(net.ID))
	}

	scc := g.SCC()
	fmt.Println("\nstrongly connected components (paper STEP 2):")
	for comp := 0; comp < scc.NumComponents(); comp++ {
		if !scc.Nontrivial(comp) {
			continue
		}
		var names []string
		for _, v := range scc.Members[comp] {
			names = append(names, g.Nodes[v].Name)
		}
		sort.Strings(names)
		fmt.Printf("  SCC with f=%d registers, %d intra nets: %v\n",
			scc.RegCount[comp], len(scc.IntraNets[comp]), names)
	}

	// Figure 5: Saturate_Network congestion. Wider arrows in the paper =
	// larger d(e) here.
	fres, err := flow.Saturate(context.Background(), g, flow.DefaultConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figure 5: net congestion after Saturate_Network ==")
	order := make([]int, g.NumNets())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return fres.D[order[a]] > fres.D[order[b]] })
	for _, e := range order {
		fmt.Printf("  d(%-4s) = %8.3f  flow = %.2f\n", g.Nets[e].Name, fres.D[e], fres.Flow[e])
	}

	// Figure 6: Make_Group at l_k=3.
	d := append([]float64(nil), fres.D...)
	pres, err := partition.MakeGroup(g, scc, d, partition.Options{LK: 3, Beta: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figure 6: clusters after Make_Group (l_k=3) ==")
	printClusters(g, pres)

	// Figure 7: Assign_CBIT merging.
	trace, err := partition.AssignCBIT(pres, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figure 7: merged partition after Assign_CBIT (l_k=3) ==")
	printClusters(g, pres)
	fmt.Printf("(%d merges performed; paper's example finds 4 partitions)\n", len(trace))
	for _, m := range trace {
		fmt.Printf("  merged cluster %d into %d: inputs %d -> %d (gain %d)\n",
			m.From, m.Into, m.InputsBefore, m.InputsAfter, m.Gain)
	}
	fmt.Printf("cut nets: %d total, %d on SCCs\n", pres.NumCutNets(), pres.NumCutNetsOnSCC())
}

func printClusters(g *graph.G, r *partition.Result) {
	for _, cl := range r.Clusters {
		var names []string
		for _, v := range cl.Nodes {
			names = append(names, g.Nodes[v].Name)
		}
		sort.Strings(names)
		fmt.Printf("  cluster %d: iota=%d  %v\n", cl.ID, cl.Inputs(), names)
	}
}
