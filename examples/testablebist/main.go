// testablebist shows the full BIST compiler output: compile a circuit with
// Merced, emit the self-testable netlist (retimed registers converted to
// A_CELLs, multiplexed test cells, primary-input boundary cells, scan
// chain), then drive the emitted netlist through its three modes — normal
// operation, scan shifting, and the dual TPG/PSA test mode — with the logic
// simulator, and compare against conventional non-pipelined PET.
//
//	go run ./examples/testablebist
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench89"
	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/ppet"
	"repro/internal/sim"
)

func main() {
	c, err := bench89.S27()
	if err != nil {
		log.Fatal(err)
	}
	r, err := core.Compile(context.Background(), c, core.DefaultOptions(3, 1))
	if err != nil {
		log.Fatal(err)
	}
	tc, info, err := emit.Testable(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emitted %s: %d gates, %d DFFs\n", tc.Name, len(tc.Gates), tc.NumDFFs())
	fmt.Printf("  %d registers converted to A_CELLs (0.9 DFF each)\n", info.Converted)
	fmt.Printf("  %d multiplexed test cells (%d of them input-boundary)\n", info.Multiplexed, info.Boundary)
	fmt.Printf("  scan chain: SCANIN -> %v -> SCANOUT\n", info.ScanOrder)
	fmt.Printf("  test hardware: +%.0f area units on a %.0f-unit circuit\n", info.AddedArea, c.Area())

	ev, err := sim.Compile(tc)
	if err != nil {
		log.Fatal(err)
	}
	idx := map[string]int{}
	for i, in := range tc.Inputs {
		idx[in] = i
	}
	outIdx := map[string]int{}
	for i, o := range tc.Outputs {
		outIdx[o] = i
	}

	// Normal mode: TB1=TB2=1, TMODE=0; run the functional circuit.
	st := ev.NewState()
	setCtrl := func(tb1, tb2, tmode uint64) {
		ev.SetInput(st, idx[emit.CtrlTB1], tb1)
		ev.SetInput(st, idx[emit.CtrlTB2], tb2)
		ev.SetInput(st, idx[emit.CtrlTMode], tmode)
		ev.SetInput(st, idx[emit.CtrlScanIn], 0)
	}
	fmt.Println("\nnormal mode (TB1=1 TB2=1 TMODE=0), G17 under a walking input:")
	for cycle := 0; cycle < 8; cycle++ {
		setCtrl(^uint64(0), ^uint64(0), 0)
		for i, in := range []string{"G0", "G1", "G2", "G3"} {
			var w uint64
			if cycle&(1<<uint(i)) != 0 {
				w = 1
			}
			ev.SetInput(st, idx[in], w)
		}
		ev.EvalComb(st)
		fmt.Printf("  cycle %d: G17=%d\n", cycle, ev.Output(st, outIdx["G17"])&1)
		ev.ClockDFFs(st)
	}

	// Scan mode: shift a marker through the chain.
	fmt.Println("\nscan mode (TB1=0 TB2=0): marker propagation to SCANOUT:")
	st = ev.NewState()
	n := len(info.ScanOrder)
	for cycle := 0; cycle <= n; cycle++ {
		setCtrl(0, 0, 0)
		if cycle == 0 {
			ev.SetInput(st, idx[emit.CtrlScanIn], 1)
		}
		ev.EvalComb(st)
		fmt.Printf("  shift %2d: SCANOUT=%d\n", cycle, ev.Output(st, outIdx[emit.ScanOut])&1)
		ev.ClockDFFs(st)
	}

	// Test mode: the cells shift-and-fold responses (TB1=1, TB2=0,
	// TMODE=1); the chain state after a burst is the raw signature.
	fmt.Println("\ntest mode (TB1=1 TB2=0 TMODE=1): chain state folds circuit responses:")
	st = ev.NewState()
	var sig []uint64
	for cycle := 0; cycle < 32; cycle++ {
		setCtrl(^uint64(0), 0, ^uint64(0))
		for i, in := range []string{"G0", "G1", "G2", "G3"} {
			ev.SetInput(st, idx[in], uint64((cycle>>uint(i))&1))
		}
		ev.EvalComb(st)
		ev.ClockDFFs(st)
	}
	// Read the signature out through the scan chain.
	for shift := 0; shift < n; shift++ {
		setCtrl(0, 0, 0)
		ev.EvalComb(st)
		sig = append(sig, ev.Output(st, outIdx[emit.ScanOut])&1)
		ev.ClockDFFs(st)
	}
	fmt.Printf("  signature (scan-out after 32 test cycles): %v\n", sig)

	// PPET vs conventional PET testing time.
	plan, err := ppet.BuildPlan(r.Partition)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntesting time: PPET %g cycles (all segments concurrent) vs conventional PET %g cycles (serial) — %.1fx speed-up\n",
		plan.TotalTime, ppet.PETTime(plan), plan.SpeedUp())
}
