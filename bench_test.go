// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks for every pipeline stage. The per-table benches run on
// the tractable circuit subset so `go test -bench=.` finishes in minutes;
// `go run ./cmd/tables -table all` regenerates the full seventeen-circuit
// tables (several minutes of compute, dominated by s35932/s38417/s38584.1).
package ppetretime

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench89"
	"repro/internal/cbit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/ppet"
	"repro/internal/retime"
	"repro/internal/sim"
)

// benchCircuits is the subset used by the per-table benchmarks.
var benchCircuits = []string{"s510", "s420.1", "s641", "s713", "s820", "s832", "s838.1", "s1423"}

func loadB(b *testing.B, name string) *netlist.Circuit {
	b.Helper()
	c, err := bench89.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func compileB(b *testing.B, name string, lk int) *core.Result {
	b.Helper()
	r, err := core.Compile(context.Background(), loadB(b, name), core.DefaultOptions(lk, 1))
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable1CBITArea regenerates Table 1 (CBIT area cost per type).
func BenchmarkTable1CBITArea(b *testing.B) {
	var rows []cbit.Table1Row
	for i := 0; i < b.N; i++ {
		rows = cbit.Table1()
	}
	b.StopTimer()
	for _, r := range rows {
		b.Logf("Table1 %s l=%d p=%.2f sigma=%.2f", r.Type, r.Length, r.AreaDFF, r.PerBit)
	}
}

// BenchmarkFigure4BitwiseArea regenerates the Figure 4 series: bit-wise
// CBIT area vs. pseudo-exhaustive testing time per standard width.
func BenchmarkFigure4BitwiseArea(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, w := range cbit.StandardWidths {
			sink += cbit.AreaPerBit(w) + cbit.TestingTime(w)
		}
	}
	b.StopTimer()
	for _, w := range cbit.StandardWidths {
		b.Logf("Figure4 l=%d sigma=%.3f T=%.0f", w, cbit.AreaPerBit(w), cbit.TestingTime(w))
	}
	_ = sink
}

// BenchmarkFigure1bTestingTime regenerates Figure 1(b): a test pipe's time
// is dominated by its widest CBIT.
func BenchmarkFigure1bTestingTime(b *testing.B) {
	widths := [][]int{{4, 8}, {8, 16, 4}, {24, 12}, {32, 16, 8}}
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, pipe := range widths {
			sink += ppet.PipeTime(pipe)
		}
	}
	b.StopTimer()
	for _, pipe := range widths {
		b.Logf("Figure1b pipe %v -> T=%.0f cycles", pipe, ppet.PipeTime(pipe))
	}
	_ = sink
}

// BenchmarkTable9CircuitInfo regenerates the Table 9 circuit statistics for
// the bench subset (cmd/tables covers all seventeen).
func BenchmarkTable9CircuitInfo(b *testing.B) {
	var stats []netlist.Stats
	for i := 0; i < b.N; i++ {
		stats = stats[:0]
		for _, name := range benchCircuits {
			stats = append(stats, loadB(b, name).Stats())
		}
	}
	b.StopTimer()
	for _, s := range stats {
		b.Logf("Table9 %-8s PI=%d DFF=%d gates=%d INV=%d area=%.0f", s.Name, s.PIs, s.DFFs, s.Gates, s.Inverters, s.Area)
	}
}

func benchPartitionTable(b *testing.B, lk int, circuits []string) {
	for _, name := range circuits {
		name := name
		b.Run(name, func(b *testing.B) {
			var r *core.Result
			for i := 0; i < b.N; i++ {
				r = compileB(b, name, lk)
			}
			b.StopTimer()
			b.Logf("Table%d %-8s DFF=%d DFFonSCC=%d cutsOnSCC=%d cuts=%d t=%.2fs",
				10+(lk-16)/8, name, r.Areas.DFFs, r.Areas.DFFsOnSCC,
				r.Areas.CutNetsOnSCC, r.Areas.CutNets, r.Elapsed.Seconds())
		})
	}
}

// BenchmarkTable10PartitionLk16 regenerates the Table 10 rows (l_k=16).
func BenchmarkTable10PartitionLk16(b *testing.B) {
	benchPartitionTable(b, 16, benchCircuits)
}

// BenchmarkTable11PartitionLk24 regenerates the Table 11 rows (l_k=24) for
// the circuits the paper lists there.
func BenchmarkTable11PartitionLk24(b *testing.B) {
	benchPartitionTable(b, 24, []string{"s641", "s713"})
}

// BenchmarkTable12AreaComparison regenerates the Table 12 rows: CBIT area
// percentage with and without retiming at l_k = 16 and 24.
func BenchmarkTable12AreaComparison(b *testing.B) {
	for _, name := range benchCircuits {
		name := name
		b.Run(name, func(b *testing.B) {
			var a16, a24 core.AreaReport
			for i := 0; i < b.N; i++ {
				a16 = compileB(b, name, 16).Areas
				a24 = compileB(b, name, 24).Areas
			}
			b.StopTimer()
			b.Logf("Table12 %-8s lk16 %.1f/%.1f  lk24 %.1f/%.1f",
				name, a16.RatioRetimed, a16.RatioNonRetimed, a24.RatioRetimed, a24.RatioNonRetimed)
		})
	}
}

// BenchmarkFigure8Savings regenerates the Figure 8 series (retiming saving
// in A_CBIT/A_Total percentage points per circuit).
func BenchmarkFigure8Savings(b *testing.B) {
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, name := range benchCircuits {
			r := compileB(b, name, 16)
			rows = append(rows, fmt.Sprintf("Figure8 %-8s saving=%.1f", name, r.Areas.Saving()))
		}
	}
	b.StopTimer()
	b.Log("\n" + strings.Join(rows, "\n"))
}

// BenchmarkFigure5SaturateS27 regenerates the Figure 5 state: the saturated
// congestion of the paper's s27 example.
func BenchmarkFigure5SaturateS27(b *testing.B) {
	c := loadB(b, "s27")
	g, err := graph.FromCircuit(c)
	if err != nil {
		b.Fatal(err)
	}
	var res *flow.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = flow.Saturate(context.Background(), g, flow.DefaultConfig(1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("Figure5 s27: %d trees, max d=%.2f", res.Trees, maxOf(res.D))
}

// BenchmarkFigures67MakeGroupAssign regenerates Figures 6 and 7: Make_Group
// then Assign_CBIT on s27 at l_k=3.
func BenchmarkFigures67MakeGroupAssign(b *testing.B) {
	c := loadB(b, "s27")
	g, err := graph.FromCircuit(c)
	if err != nil {
		b.Fatal(err)
	}
	scc := g.SCC()
	fres, err := flow.Saturate(context.Background(), g, flow.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	var r *partition.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := append([]float64(nil), fres.D...)
		r, err = partition.MakeGroup(g, scc, d, partition.Options{LK: 3, Beta: 50})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := partition.AssignCBIT(r, 3); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("Figures6+7 s27: %d clusters, %d cuts", len(r.Clusters), r.NumCutNets())
}

// --- pipeline-stage micro-benchmarks -----------------------------------

func BenchmarkParseBench(b *testing.B) {
	text := loadB(b, "s1423").BenchString()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netlist.ParseBenchString("s1423", text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSuite(b *testing.B) {
	sp, _ := bench89.SpecByName("s1423")
	for i := 0; i < b.N; i++ {
		if _, err := bench89.Generate(sp, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSCC(b *testing.B) {
	g, err := graph.FromCircuit(loadB(b, "s5378"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SCC()
	}
}

func BenchmarkSaturateNetwork(b *testing.B) {
	g, err := graph.FromCircuit(loadB(b, "s1423"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Saturate(context.Background(), g, flow.DefaultConfig(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakeGroup(b *testing.B) {
	g, err := graph.FromCircuit(loadB(b, "s1423"))
	if err != nil {
		b.Fatal(err)
	}
	scc := g.SCC()
	fres, err := flow.Saturate(context.Background(), g, flow.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := append([]float64(nil), fres.D...)
		if _, err := partition.MakeGroup(g, scc, d, partition.Options{LK: 16, Beta: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssignCBIT(b *testing.B) {
	g, err := graph.FromCircuit(loadB(b, "s1423"))
	if err != nil {
		b.Fatal(err)
	}
	scc := g.SCC()
	fres, err := flow.Saturate(context.Background(), g, flow.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := append([]float64(nil), fres.D...)
		r, err := partition.MakeGroup(g, scc, d, partition.Options{LK: 16, Beta: 50})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := partition.AssignCBIT(r, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetimeSolve(b *testing.B) {
	r := compileB(b, "s1423", 16)
	cuts := make(map[int]bool, len(r.Partition.CutNets))
	priority := make(map[int]float64)
	for _, e := range r.Partition.CutNets {
		cuts[e] = true
		priority[e] = r.Flow.D[e]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg := retime.Build(r.Graph)
		cg.SetRequirements(cuts)
		if _, err := retime.Solve(context.Background(), cg, cuts, priority); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLFSRStep(b *testing.B) {
	c, err := cbit.New(24)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= c.StepTPG()
	}
	_ = sink
}

func BenchmarkMISRStep(b *testing.B) {
	c, err := cbit.New(24)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= c.StepPSA(uint64(i))
	}
	_ = sink
}

// BenchmarkFaultSimulation measures the serial single-segment API on one
// s510 cluster; BenchmarkFaultCampaign measures its whole-partition
// successor, fault.Campaign, which packs every cluster's collapsed faults
// into triaged batches across a worker pool (see also the seed-vs-engine
// comparison pair in internal/fault/campaign_bench_test.go).
func BenchmarkFaultSimulation(b *testing.B) {
	c := loadB(b, "s510")
	r := compileB(b, "s510", 8)
	cl := r.Partition.Clusters[0]
	inputs := make([]int, 0, len(cl.InputNets))
	for e := range cl.InputNets {
		inputs = append(inputs, e)
	}
	sg, err := sim.BuildSegment(c, r.Graph, cl.Nodes, inputs)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.List(sg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.Simulate(sg, faults, fault.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultCampaign(b *testing.B) {
	c := loadB(b, "s510")
	r := compileB(b, "s510", 8)
	opt := fault.CampaignOptions{Seed: 1, Workers: 4, Collapse: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fault.Campaign(context.Background(), c, r.Partition, opt)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Detected == 0 {
			b.Fatal("campaign detected nothing")
		}
	}
}

func BenchmarkPPETSelfTest(b *testing.B) {
	c := loadB(b, "s27")
	r := compileB(b, "s27", 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ppet.SelfTest(c, r.Partition, ppet.SelfTestOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullCompileS1423(b *testing.B) {
	c := loadB(b, "s1423")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(context.Background(), c, core.DefaultOptions(16, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
